// Command benchguard turns `go test -bench` output into a machine-readable
// benchmark artifact and gates performance regressions against a committed
// baseline. CI runs the solver benchmarks at preview resolution, feeds the
// text output through this tool, uploads the resulting BENCH_*.json, and
// fails the build when any benchmark slowed down by more than the allowed
// ratio relative to bench/BENCH_baseline.json.
//
// Usage:
//
//	go test -run '^$' -bench 'Solver|BuildBasis' -benchtime 1x . | \
//	    benchguard -baseline bench/BENCH_baseline.json -out BENCH_preview.json
//
// Flags:
//
//	-input      bench output file ("-" or empty reads stdin)
//	-baseline   committed baseline JSON; "" skips the comparison
//	-out        artifact to write; "" skips writing
//	-max-ratio  failure threshold on ns/op vs baseline (default 2.0)
//	-max-metric-ratio  threshold on custom metrics like iters/solve (1.5)
//	-resolution mesh-resolution tag stamped into the artifact
//	-write-baseline  overwrite the baseline with this run and exit
//
// Wall-clock (ns/op) gets the loose 2x gate because the committed
// baseline and the CI runner are different machines; the iters/solve
// metric the solver benches emit is machine-independent, so it gets the
// tight gate and is the reliable solver-regression signal. Metrics whose
// unit ends in "frac" (the V-cycle per-phase time fractions) are
// machine-dependent and reported without gating. Benchmarks present in
// only one of run/baseline are reported but never fail the gate, so
// adding or retiring benchmarks does not require lockstep baseline
// updates.
//
// Compare mode (-compare) diffs two artifacts — typically a before/after
// pair produced by this tool or by cmd/perfab — as a markdown table and
// exits non-zero when the new side regressed beyond the thresholds:
//
//	benchguard -compare old.json new.json
//
// Load-gating mode (-load-input) ingests cmd/loadgen report JSONs
// instead of bench text and gates them against bench/LOAD_baseline.json
// with the same philosophy: p99 within -load-max-ratio of the baseline
// (plus -load-slack-ms of absolute headroom), shed rate within the same
// ratio, and any 5xx under load an unconditional failure.
//
//	benchguard -load-input load_uniform.json,load_hotkey.json \
//	    -load-baseline bench/LOAD_baseline.json -load-out LOAD_preview.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"vcselnoc/internal/benchfmt"
	"vcselnoc/internal/loadreport"
)

func main() {
	input := flag.String("input", "", "bench output file (empty or - = stdin)")
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	out := flag.String("out", "", "artifact JSON to write")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when ns/op exceeds baseline by this ratio")
	maxMetricRatio := flag.Float64("max-metric-ratio", 1.5, "fail when a custom metric (e.g. iters/solve) exceeds baseline by this ratio")
	resolution := flag.String("resolution", benchRes(), "mesh resolution tag recorded in the artifact (defaults to VCSELNOC_BENCH_RES or fast)")
	writeBaseline := flag.Bool("write-baseline", false, "overwrite the baseline with this run and exit")
	compare := flag.Bool("compare", false, "diff two artifact JSONs (positional: old.json new.json) as a markdown table; exit 1 on regression beyond the thresholds")
	loadInput := flag.String("load-input", "", "comma-separated loadgen report JSONs; switches to load-gating mode")
	loadBaseline := flag.String("load-baseline", "", "committed load baseline JSON (load mode)")
	loadOut := flag.String("load-out", "", "merged load artifact to write (load mode)")
	writeLoadBaseline := flag.Bool("write-load-baseline", false, "overwrite the load baseline with this run and exit")
	loadMaxRatio := flag.Float64("load-max-ratio", 2.0, "fail when a run's p99 or shed rate exceeds the load baseline by this ratio")
	loadSlackMs := flag.Float64("load-slack-ms", 25, "absolute p99 headroom added on top of the ratio gate (ms)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")

	if *loadInput != "" {
		loadMode(*loadInput, *loadBaseline, *loadOut, *resolution, *writeLoadBaseline, *loadMaxRatio, *loadSlackMs)
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two artifact paths: old.json new.json")
		}
		if err := compareMode(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRatio, *maxMetricRatio); err != nil {
			log.Fatal(err)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *input != "" && *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	art, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	art.Resolution = *resolution
	if len(art.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	if *writeBaseline {
		if *baseline == "" {
			log.Fatal("-write-baseline needs -baseline")
		}
		if err := writeJSON(*baseline, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %s rewritten with %d benchmarks\n", *baseline, len(art.Benchmarks))
		return
	}
	if *out != "" {
		if err := writeJSON(*out, art); err != nil {
			log.Fatal(err)
		}
	}
	if *baseline == "" {
		return
	}
	base, err := readJSON(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	if base.Resolution != art.Resolution {
		log.Fatalf("baseline resolution %q does not match run resolution %q", base.Resolution, art.Resolution)
	}
	failed := false
	for name, e := range art.Benchmarks {
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("NEW   %-45s %12.0f ns/op (no baseline)\n", name, e.NsPerOp)
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		verdict := "ok   "
		if ratio > *maxRatio {
			verdict = "FAIL "
			failed = true
		}
		fmt.Printf("%s %-45s %12.0f ns/op  baseline %12.0f  ratio %.2fx\n", verdict, name, e.NsPerOp, b.NsPerOp, ratio)
		// Custom metrics (iters/solve) are machine-independent, so they
		// get a tighter gate than wall-clock — an iteration-count jump is
		// a solver regression regardless of runner speed. Time-fraction
		// metrics (unit suffix "frac") are machine-dependent and stay
		// informational.
		for unit, v := range e.Metrics {
			bv, ok := b.Metrics[unit]
			if !ok || bv == 0 || benchfmt.Informational(unit) {
				continue
			}
			mr := v / bv
			if mr > *maxMetricRatio {
				failed = true
				fmt.Printf("FAIL  %-45s %12.3f %s  baseline %12.3f  ratio %.2fx\n", name, v, unit, bv, mr)
			}
		}
	}
	for name := range base.Benchmarks {
		if _, ok := art.Benchmarks[name]; !ok {
			fmt.Printf("GONE  %-45s (in baseline, not in run)\n", name)
		}
	}
	if failed {
		log.Fatalf("benchmark regression over %.1fx detected", *maxRatio)
	}
}

// loadMode merges one or more loadgen reports into a loadreport.Baseline
// document keyed by traffic shape and gates each run against the
// committed baseline (or rewrites it). It mirrors the bench path's
// philosophy: loose ratio gates because the baseline and the CI runner
// are different machines, resolution tags so artifacts from different
// mesh tiers never compare, and shapes present in only one side are
// reported but never fail the gate.
func loadMode(inputs, baselinePath, outPath, resolution string, writeBaseline bool, maxRatio, slackMs float64) {
	run := loadreport.Baseline{Resolution: resolution, Runs: map[string]loadreport.Report{}}
	for _, path := range strings.Split(inputs, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		var rep loadreport.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if rep.Shape == "" {
			log.Fatalf("%s: report has no traffic shape", path)
		}
		if _, dup := run.Runs[rep.Shape]; dup {
			log.Fatalf("%s: duplicate report for shape %q", path, rep.Shape)
		}
		run.Runs[rep.Shape] = rep
	}
	if len(run.Runs) == 0 {
		log.Fatal("no load reports found in -load-input")
	}
	if writeBaseline {
		if baselinePath == "" {
			log.Fatal("-write-load-baseline needs -load-baseline")
		}
		if err := writeAnyJSON(baselinePath, run); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("load baseline %s rewritten with %d shapes\n", baselinePath, len(run.Runs))
		return
	}
	if outPath != "" {
		if err := writeAnyJSON(outPath, run); err != nil {
			log.Fatal(err)
		}
	}
	if baselinePath == "" {
		return
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var base loadreport.Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("%s: %v", baselinePath, err)
	}
	if base.Resolution != run.Resolution {
		log.Fatalf("load baseline resolution %q does not match run resolution %q", base.Resolution, run.Resolution)
	}
	failed := false
	for shape, rep := range run.Runs {
		b, ok := base.Runs[shape]
		if !ok {
			fmt.Printf("NEW   %-8s p99 %8.2f ms  shed %.3f (no baseline)\n", shape, rep.Latency.P99, rep.ShedRate)
			continue
		}
		problems := loadreport.Gate(rep, b, maxRatio, slackMs)
		if len(problems) == 0 {
			fmt.Printf("ok    %-8s p99 %8.2f ms (baseline %8.2f)  shed %.3f (baseline %.3f)  coalesced %d\n",
				shape, rep.Latency.P99, b.Latency.P99, rep.ShedRate, b.ShedRate, rep.ServerCoalesced)
			continue
		}
		failed = true
		for _, p := range problems {
			fmt.Printf("FAIL  %s\n", p)
		}
	}
	for shape := range base.Runs {
		if _, ok := run.Runs[shape]; !ok {
			fmt.Printf("GONE  %-8s (in baseline, not in run)\n", shape)
		}
	}
	if failed {
		log.Fatalf("load regression over %.1fx detected", maxRatio)
	}
}

func writeAnyJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareMode diffs two artifacts as a markdown table and returns an
// error when the new side regressed beyond the thresholds. Mismatched
// resolutions are an error — a preview run never meaningfully compares
// against a fast one.
func compareMode(w io.Writer, oldPath, newPath string, maxRatio, maxMetricRatio float64) error {
	oldArt, err := readJSON(oldPath)
	if err != nil {
		return err
	}
	newArt, err := readJSON(newPath)
	if err != nil {
		return err
	}
	if oldArt.Resolution != newArt.Resolution {
		return fmt.Errorf("resolution mismatch: %s is %q, %s is %q", oldPath, oldArt.Resolution, newPath, newArt.Resolution)
	}
	deltas := benchfmt.Compare(oldArt, newArt)
	benchfmt.Markdown(w, deltas, oldPath, newPath)
	if regs := benchfmt.Regressions(deltas, maxRatio, maxMetricRatio); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(w, "\nREGRESSION %s", r)
		}
		fmt.Fprintln(w)
		return fmt.Errorf("%d benchmark regression(s) beyond %.2fx", len(regs), maxRatio)
	}
	return nil
}

// parse converts go test bench output into an artifact stamped with the
// ambient bench resolution (see internal/benchfmt for the format).
func parse(r io.Reader) (*benchfmt.Artifact, error) {
	return benchfmt.Parse(r, benchRes())
}

func benchRes() string {
	if res := os.Getenv("VCSELNOC_BENCH_RES"); res != "" {
		return res
	}
	return "fast"
}

func readJSON(path string) (*benchfmt.Artifact, error) {
	return benchfmt.ReadFile(path)
}

func writeJSON(path string, art *benchfmt.Artifact) error {
	return benchfmt.WriteFile(path, art)
}
