// Command benchguard turns `go test -bench` output into a machine-readable
// benchmark artifact and gates performance regressions against a committed
// baseline. CI runs the solver benchmarks at preview resolution, feeds the
// text output through this tool, uploads the resulting BENCH_*.json, and
// fails the build when any benchmark slowed down by more than the allowed
// ratio relative to bench/BENCH_baseline.json.
//
// Usage:
//
//	go test -run '^$' -bench 'Solver|BuildBasis' -benchtime 1x . | \
//	    benchguard -baseline bench/BENCH_baseline.json -out BENCH_preview.json
//
// Flags:
//
//	-input      bench output file ("-" or empty reads stdin)
//	-baseline   committed baseline JSON; "" skips the comparison
//	-out        artifact to write; "" skips writing
//	-max-ratio  failure threshold on ns/op vs baseline (default 2.0)
//	-max-metric-ratio  threshold on custom metrics like iters/solve (1.5)
//	-resolution mesh-resolution tag stamped into the artifact
//	-write-baseline  overwrite the baseline with this run and exit
//
// Wall-clock (ns/op) gets the loose 2x gate because the committed
// baseline and the CI runner are different machines; the iters/solve
// metric the solver benches emit is machine-independent, so it gets the
// tight gate and is the reliable solver-regression signal. Benchmarks
// present in only one of run/baseline are reported but never fail the
// gate, so adding or retiring benchmarks does not require lockstep
// baseline updates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurements: ns/op plus any custom metrics
// (e.g. the solver benches' iters/solve).
type Entry struct {
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the JSON document benchguard reads and writes.
type Artifact struct {
	// Resolution records the mesh resolution the benches ran at (from
	// VCSELNOC_BENCH_RES), so artifacts from different tiers are never
	// compared by accident.
	Resolution string           `json:"resolution"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	input := flag.String("input", "", "bench output file (empty or - = stdin)")
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	out := flag.String("out", "", "artifact JSON to write")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when ns/op exceeds baseline by this ratio")
	maxMetricRatio := flag.Float64("max-metric-ratio", 1.5, "fail when a custom metric (e.g. iters/solve) exceeds baseline by this ratio")
	resolution := flag.String("resolution", benchRes(), "mesh resolution tag recorded in the artifact (defaults to VCSELNOC_BENCH_RES or fast)")
	writeBaseline := flag.Bool("write-baseline", false, "overwrite the baseline with this run and exit")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")

	var r io.Reader = os.Stdin
	if *input != "" && *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	art, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	art.Resolution = *resolution
	if len(art.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	if *writeBaseline {
		if *baseline == "" {
			log.Fatal("-write-baseline needs -baseline")
		}
		if err := writeJSON(*baseline, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %s rewritten with %d benchmarks\n", *baseline, len(art.Benchmarks))
		return
	}
	if *out != "" {
		if err := writeJSON(*out, art); err != nil {
			log.Fatal(err)
		}
	}
	if *baseline == "" {
		return
	}
	base, err := readJSON(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	if base.Resolution != art.Resolution {
		log.Fatalf("baseline resolution %q does not match run resolution %q", base.Resolution, art.Resolution)
	}
	failed := false
	for name, e := range art.Benchmarks {
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("NEW   %-45s %12.0f ns/op (no baseline)\n", name, e.NsPerOp)
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		verdict := "ok   "
		if ratio > *maxRatio {
			verdict = "FAIL "
			failed = true
		}
		fmt.Printf("%s %-45s %12.0f ns/op  baseline %12.0f  ratio %.2fx\n", verdict, name, e.NsPerOp, b.NsPerOp, ratio)
		// Custom metrics (iters/solve) are machine-independent, so they
		// get a tighter gate than wall-clock — an iteration-count jump is
		// a solver regression regardless of runner speed.
		for unit, v := range e.Metrics {
			bv, ok := b.Metrics[unit]
			if !ok || bv == 0 {
				continue
			}
			mr := v / bv
			if mr > *maxMetricRatio {
				failed = true
				fmt.Printf("FAIL  %-45s %12.3f %s  baseline %12.3f  ratio %.2fx\n", name, v, unit, bv, mr)
			}
		}
	}
	for name := range base.Benchmarks {
		if _, ok := art.Benchmarks[name]; !ok {
			fmt.Printf("GONE  %-45s (in baseline, not in run)\n", name)
		}
	}
	if failed {
		log.Fatalf("benchmark regression over %.1fx detected", *maxRatio)
	}
}

// parse extracts benchmark result lines of the form
//
//	BenchmarkName/sub-8   1   123456 ns/op   5.000 iters/solve
//
// from go test output. The trailing -N GOMAXPROCS suffix is stripped so
// results compare across machines with different core counts.
func parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{Resolution: benchRes(), Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{Metrics: map[string]float64{}}
		ok := false
		// fields[1] is the iteration count; value/unit pairs follow.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
				ok = true
			default:
				e.Metrics[unit] = v
			}
		}
		if ok {
			if len(e.Metrics) == 0 {
				e.Metrics = nil
			}
			art.Benchmarks[name] = e
		}
	}
	return art, sc.Err()
}

func benchRes() string {
	if res := os.Getenv("VCSELNOC_BENCH_RES"); res != "" {
		return res
	}
	return "fast"
}

func readJSON(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art := &Artifact{}
	if err := json.Unmarshal(data, art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}

func writeJSON(path string, art *Artifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
