package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: vcselnoc
BenchmarkSolverBackends/mg-cg-8         	       1	 543166938 ns/op	         5.000 iters/solve
BenchmarkBuildBasis/cached-batch-16     	       2	 710932192 ns/op
BenchmarkWeird	garbage line that must be skipped
PASS
ok  	vcselnoc	4.958s
`
	art, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(art.Benchmarks), art.Benchmarks)
	}
	mg, ok := art.Benchmarks["BenchmarkSolverBackends/mg-cg"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if mg.NsPerOp != 543166938 {
		t.Errorf("ns/op = %g", mg.NsPerOp)
	}
	if mg.Metrics["iters/solve"] != 5 {
		t.Errorf("iters/solve metric = %g", mg.Metrics["iters/solve"])
	}
	bb := art.Benchmarks["BenchmarkBuildBasis/cached-batch"]
	if bb.NsPerOp != 710932192 || bb.Metrics != nil {
		t.Errorf("cached-batch entry wrong: %+v", bb)
	}
}
