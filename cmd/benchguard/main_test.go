package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vcselnoc/internal/loadreport"
)

func TestParse(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: vcselnoc
BenchmarkSolverBackends/mg-cg-8         	       1	 543166938 ns/op	         5.000 iters/solve
BenchmarkBuildBasis/cached-batch-16     	       2	 710932192 ns/op
BenchmarkWeird	garbage line that must be skipped
PASS
ok  	vcselnoc	4.958s
`
	art, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(art.Benchmarks), art.Benchmarks)
	}
	mg, ok := art.Benchmarks["BenchmarkSolverBackends/mg-cg"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if mg.NsPerOp != 543166938 {
		t.Errorf("ns/op = %g", mg.NsPerOp)
	}
	if mg.Metrics["iters/solve"] != 5 {
		t.Errorf("iters/solve metric = %g", mg.Metrics["iters/solve"])
	}
	bb := art.Benchmarks["BenchmarkBuildBasis/cached-batch"]
	if bb.NsPerOp != 710932192 || bb.Metrics != nil {
		t.Errorf("cached-batch entry wrong: %+v", bb)
	}
}

// writeReport writes one loadgen report JSON into dir and returns its path.
func writeReport(t *testing.T, dir string, rep loadreport.Report) string {
	t.Helper()
	path := filepath.Join(dir, rep.Shape+".json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadModeRoundTrip drives loadMode through its happy paths: rewrite
// the baseline from two shape reports, then gate a compliant run against
// it and check the merged artifact round-trips. (Failing-gate arithmetic
// is pinned in internal/loadreport's Gate tests; loadMode exits the
// process on failure, so only passing paths run in-process here.)
func TestLoadModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	uniform := loadreport.Report{Shape: "uniform", DurationS: 5, Sent: 100, OK: 100, Latency: loadreport.Latency{P99: 40, Count: 100}}
	hotkey := loadreport.Report{Shape: "hotkey", DurationS: 5, Sent: 200, OK: 150, Shed: 50, ShedRate: 0.25,
		ServerCoalesced: 30, Latency: loadreport.Latency{P99: 25, Count: 200}}
	inputs := writeReport(t, dir, uniform) + "," + writeReport(t, dir, hotkey)

	basePath := filepath.Join(dir, "LOAD_baseline.json")
	loadMode(inputs, basePath, "", "preview", true, 2.0, 25)

	var base loadreport.Baseline
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Resolution != "preview" || len(base.Runs) != 2 {
		t.Fatalf("baseline = %+v", base)
	}
	if base.Runs["hotkey"].ServerCoalesced != 30 {
		t.Fatalf("hotkey run lost counters: %+v", base.Runs["hotkey"])
	}

	// Gate the same reports against the freshly written baseline: an
	// identical run must pass and the merged artifact must be written.
	outPath := filepath.Join(dir, "LOAD_preview.json")
	loadMode(inputs, basePath, outPath, "preview", false, 2.0, 25)
	var merged loadreport.Baseline
	data, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatal(err)
	}
	if len(merged.Runs) != 2 || merged.Runs["uniform"].Latency.P99 != 40 {
		t.Fatalf("merged artifact = %+v", merged)
	}
}
