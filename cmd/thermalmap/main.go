// Command thermalmap runs one steady-state thermal simulation of the SCC +
// ONoC system and renders the optical-layer temperature field, either as
// an ASCII map on stdout or as CSV.
//
// Usage:
//
//	thermalmap [-chip 25] [-pvcsel 3.6e-3] [-pheater 1.08e-3]
//	           [-activity uniform] [-seed 1] [-res fast]
//	           [-layer optical] [-csv out.csv] [-width 100]
//	           [-solver jacobi-cg|ssor-cg|mg-cg] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
)

func main() {
	chip := flag.Float64("chip", 25, "total chip power in watts")
	pv := flag.Float64("pvcsel", 3.6e-3, "per-VCSEL dissipated power in watts (driver matched)")
	ph := flag.Float64("pheater", 1.08e-3, "per-MR heater power in watts")
	act := flag.String("activity", "uniform", "chip activity: uniform, diagonal, random, hotspot, checkerboard")
	seed := flag.Int64("seed", 1, "seed for the random activity")
	res := flag.String("res", "fast", "mesh resolution: preview, coarse, fast or paper")
	layer := flag.String("layer", "optical", "stack layer to render")
	csvPath := flag.String("csv", "", "write the map as CSV to this path instead of ASCII")
	width := flag.Int("width", 100, "ASCII map width in characters")
	solver := flag.String("solver", "", "sparse backend: one of "+strings.Join(sparse.Backends(), ", ")+" (default auto-selects per resolution)")
	workers := flag.Int("workers", 0, "parallel solver workers (0 = all CPUs)")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("thermalmap: ")

	spec, err := thermal.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	if spec.Res, err = thermal.ResolutionByName(*res); err != nil {
		log.Fatal(err)
	}
	spec.Solver = *solver
	spec.Workers = *workers
	scenario, err := activity.ByName(*act, *seed)
	if err != nil {
		log.Fatal(err)
	}

	model, err := thermal.NewModel(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "solving %d cells...\n", model.NumCells())
	result, err := model.Solve(thermal.Powers{
		Chip:     *chip,
		Activity: scenario,
		VCSEL:    *pv,
		Driver:   *pv,
		Heater:   *ph,
	})
	if err != nil {
		log.Fatal(err)
	}

	m, err := result.LayerSlice(*layer)
	if err != nil {
		log.Fatal(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	} else {
		fmt.Print(m.RenderASCII(*width))
	}

	fmt.Printf("\nchip: avg %.2f °C, max %.2f °C\n", result.ChipAvg, result.ChipMax)
	min, max := result.ONITempRange()
	fmt.Printf("ONIs: mean %.2f °C, spread [%.2f, %.2f], worst gradient %.2f °C\n",
		result.MeanONITemp(), min, max, result.MaxONIGradient())
	for _, o := range result.ONIs {
		fmt.Printf("  ONI %2d: avg %.2f °C, gradient %.2f °C (hottest %s, coldest %s)\n",
			o.Index, o.AvgTemp, o.Gradient, o.HottestDevice, o.ColdestDevice)
	}
}
