// Command vcseld is the warm thermal-analysis daemon: it keeps assembled
// thermal models and superposition bases alive across requests and
// answers JSON design queries — gradients, feasibility, heater optima,
// SNR scenarios, thermal-map slices and paginated sweep grids. It also
// serves as the shard worker behind `dse -shards`, and runs long
// transient (warm-up) simulations as asynchronous jobs with periodic
// checkpoints that survive daemon restarts.
//
// Usage:
//
//	vcseld [-addr :8080] [-res fast] [-solver mg-cg] [-workers 0]
//	       [-batch-window 1ms] [-cache 4096] [-max-bases 8] [-warm]
//	       [-admit-rate 0] [-admit-burst 0] [-client-rate 0] [-client-burst 0]
//	       [-job-dir /var/lib/vcseld/jobs] [-job-checkpoint-every 25]
//	       [-job-ttl 0] [-coordinator http://ctl:9090] [-advertise host:port]
//	       [-log-level info] [-log-format text] [-no-trace]
//
// With -admit-rate (spec-wide) or -client-rate (per X-Client-ID / remote
// host) set, cheap superposition queries pass an O(1) atomic admission
// check; shed queries get HTTP 429 with a Retry-After header. Identical
// in-flight queries share one solve, and warm bases beyond -max-bases
// are evicted least-recently-used instead of refused.
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz             liveness + warm-state statistics
//	GET  /metrics             Prometheus text-format metrics (latency histograms included)
//	GET  /debug/requests      recent request traces with per-phase spans
//	GET  /v1/specs            registered spec registry
//	POST /v1/gradient         batched superposition gradient query
//	POST /v1/feasibility      same body, 1 °C constraint verdict
//	POST /v1/heater/optimal   golden-section heater optimisation
//	POST /v1/snr              worst-case SNR for a placement case
//	POST /v1/map              lateral temperature slice of a stack layer
//	POST /v1/sweep/gradient   paginated Fig. 9-b laser × heater grid
//	POST /v1/sweep/avgtemp    paginated Fig. 9-a chip × laser grid
//	POST /v1/transient        submit an async transient job (202 + id)
//	GET  /v1/jobs             list transient jobs
//	GET  /v1/jobs/{id}        one job's progress / result
//	GET  /v1/jobs/{id}/stream NDJSON stream of job status snapshots
//
// With -coordinator set, the daemon announces itself to a vcselctl fleet
// coordinator once its listener is up (advertising -advertise, or the
// bound address when unset) and is then heartbeat-scraped, placed and —
// on failure — migrated from by the coordinator.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight requests (including sweep chunks) drain, and running
// transient jobs checkpoint their exact current step into -job-dir so the
// next daemon resumes them bit-identically.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vcselnoc/internal/fleet"
	"vcselnoc/internal/obs"
	"vcselnoc/internal/serve"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
)

// advertiseURL derives the URL a coordinator should dial this daemon on
// from the bound listen address, when -advertise is not given. A
// wildcard host (":8080", "0.0.0.0") is replaced with the loopback
// address — right for single-host fleets; multi-host fleets set
// -advertise explicitly.
func advertiseURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	res := flag.String("res", "fast", "mesh resolution: preview, coarse, fast or paper")
	solver := flag.String("solver", "", "sparse backend: one of "+strings.Join(sparse.Backends(), ", ")+" (default auto-selects per resolution)")
	workers := flag.Int("workers", 0, "parallel solver/sweep workers (0 = all CPUs)")
	batchWindow := flag.Duration("batch-window", serve.DefaultBatchWindow, "micro-batch collection window (negative disables batching)")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "query LRU capacity")
	maxBases := flag.Int("max-bases", serve.DefaultMaxBases, "warm bases to hold per spec (least-recently-used shape evicted beyond)")
	admitRate := flag.Float64("admit-rate", 0, "spec-wide admission rate for cheap queries (queries/s; 0 = unlimited, shed gets HTTP 429 + Retry-After)")
	admitBurst := flag.Int("admit-burst", 0, "spec-wide admission burst tolerance (0 = default)")
	clientRate := flag.Float64("client-rate", 0, "per-client admission rate (queries/s per X-Client-ID or remote host; 0 = unlimited)")
	clientBurst := flag.Int("client-burst", 0, "per-client admission burst tolerance (0 = default)")
	warm := flag.Bool("warm", false, "build the model and uniform basis before accepting traffic")
	shutdownTimeout := flag.Duration("shutdown-timeout", serve.DefaultShutdownTimeout, "grace period for in-flight requests on shutdown")
	jobDir := flag.String("job-dir", "", "directory for transient-job checkpoints; jobs resume across restarts (empty keeps jobs in memory)")
	jobEvery := flag.Int("job-checkpoint-every", serve.DefaultJobCheckpointEvery, "default transient-job checkpoint cadence in steps")
	jobTTL := flag.Duration("job-ttl", 0, "garbage-collect finished transient jobs older than this (0 keeps them forever)")
	coordinator := flag.String("coordinator", "", "vcselctl coordinator URL to announce this worker to")
	advertise := flag.String("advertise", "", "URL the coordinator should reach this worker on (default derived from the bound address)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error (debug logs every query with its trace id)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	noTrace := flag.Bool("no-trace", false, "disable per-request span recording (/debug/requests stops filling; trace ids still propagate)")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("vcseld: ")

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	spec, err := thermal.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	if spec.Res, err = thermal.ResolutionByName(*res); err != nil {
		log.Fatal(err)
	}
	spec.Solver = *solver
	spec.Workers = *workers

	srv, err := serve.New(serve.Config{
		Specs:              map[string]thermal.Spec{serve.DefaultSpec: spec},
		BatchWindow:        *batchWindow,
		CacheSize:          *cacheSize,
		MaxBases:           *maxBases,
		AdmitRate:          *admitRate,
		AdmitBurst:         *admitBurst,
		ClientRate:         *clientRate,
		ClientBurst:        *clientBurst,
		JobDir:             *jobDir,
		JobCheckpointEvery: *jobEvery,
		JobTTL:             *jobTTL,
		Logger:             logger,
		DisableTracing:     *noTrace,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *warm {
		logger.Info("warming", "spec", serve.DefaultSpec, "res", *res, "solver", spec.EffectiveSolver())
		start := time.Now()
		if err := srv.Warm(serve.DefaultSpec); err != nil {
			log.Fatal(err)
		}
		logger.Info("warm", "duration_s", time.Since(start).Seconds())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// On the shutdown signal, stop background transient jobs concurrently
	// with the HTTP drain: each running job checkpoints its exact current
	// step into -job-dir (so the next daemon resumes it bit-identically)
	// and attached /v1/jobs/{id}/stream clients are released — otherwise
	// an open stream would hold the graceful drain for its full timeout.
	defer context.AfterFunc(ctx, srv.Close)()
	err = serve.ListenAndRun(ctx, *addr, srv, *shutdownTimeout, func(a net.Addr) {
		logger.Info("listening", "addr", a.String(), "res", *res, "solver", spec.EffectiveSolver())
		if *coordinator != "" {
			self := *advertise
			if self == "" {
				self = advertiseURL(a)
			}
			go func() {
				if err := fleet.Announce(ctx, *coordinator, self, *jobDir); err != nil && ctx.Err() == nil {
					logger.Warn("fleet announce failed", "coordinator", *coordinator, "err", err)
				} else if ctx.Err() == nil {
					logger.Info("announced", "self", self, "coordinator", *coordinator)
				}
			}()
		}
	})
	// Idempotent: covers exits where the listener died before any signal.
	srv.Close()
	if err != nil {
		log.Fatal(err)
	}
	logger.Info("shut down cleanly")
}
