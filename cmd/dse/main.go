// Command dse runs the paper's design-space explorations from the command
// line: the Fig. 9-a temperature sweep, the Fig. 9-b/10 heater
// exploration, the feasibility frontier under the 1 °C gradient
// constraint, and the per-activity optimal heater ratio.
//
// Usage:
//
//	dse [-res fast] [-chip 25] [-activity uniform] [-seed 1]
//	    [-mode all|temps|heater|feasible]
//	    [-solver jacobi-cg|ssor-cg|mg-cg] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
)

func main() {
	res := flag.String("res", "fast", "mesh resolution: coarse, fast or paper")
	chip := flag.Float64("chip", 25, "total chip power in watts")
	act := flag.String("activity", "uniform", "chip activity scenario")
	seed := flag.Int64("seed", 1, "seed for the random activity")
	mode := flag.String("mode", "all", "exploration: all, temps, heater, feasible")
	solver := flag.String("solver", "", "sparse backend: one of "+strings.Join(sparse.Backends(), ", ")+" (default jacobi-cg)")
	workers := flag.Int("workers", 0, "parallel solver/sweep workers (0 = all CPUs)")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("dse: ")

	spec, err := thermal.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	switch *res {
	case "coarse":
		spec.Res = thermal.CoarseResolution()
	case "fast":
		spec.Res = thermal.FastResolution()
	case "paper":
		spec.Res = thermal.PaperResolution()
	default:
		log.Fatalf("unknown resolution %q", *res)
	}
	spec.Solver = *solver
	spec.Workers = *workers
	scenario, err := activity.ByName(*act, *seed)
	if err != nil {
		log.Fatal(err)
	}

	m, err := core.NewWithSpec(spec, snr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d cells; building %s basis...\n", m.Model().NumCells(), scenario.Name())
	ex, err := m.Explorer(scenario)
	if err != nil {
		log.Fatal(err)
	}

	all := *mode == "all"
	if all || *mode == "temps" {
		temps(ex, *chip)
	}
	if all || *mode == "heater" {
		heater(ex, *chip)
	}
	if all || *mode == "feasible" {
		feasible(ex, *chip)
	}
}

func temps(ex *dse.Explorer, chip float64) {
	chips := []float64{chip * 0.5, chip * 0.75, chip, chip * 1.25}
	lasers := []float64{0, 2e-3, 4e-3, 6e-3}
	table, err := ex.SweepAvgTemp(chips, lasers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmean ONI temperature (°C):")
	fmt.Println("  Pchip\\Pv(mW):      0      2      4      6")
	for i, row := range table {
		fmt.Printf("  %6.2f W    ", chips[i])
		for _, pt := range row {
			fmt.Printf(" %6.2f", pt.MeanONITemp)
		}
		fmt.Println()
	}
}

func heater(ex *dse.Explorer, chip float64) {
	fmt.Println("\noptimal heater power per laser power:")
	for _, pv := range []float64{1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3} {
		opt, err := ex.OptimalHeater(chip, pv, pv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Pv=%3.0f mW: Ph*=%.2f mW (ratio %.2f), gradient %.2f → %.2f °C\n",
			pv*1e3, opt.PHeater*1e3, opt.Ratio, opt.GradientNoHeater, opt.MeanGradient)
	}
}

func feasible(ex *dse.Explorer, chip float64) {
	fmt.Printf("\nfeasibility under the %.1f °C gradient constraint (heater ratio 0.3):\n", dse.GradientLimit)
	pvMax, err := ex.MaxFeasibleLaserPower(chip, 0.3, 10e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  max feasible P_VCSEL: %.2f mW\n", pvMax*1e3)
	for _, pv := range []float64{1e-3, 2e-3, 4e-3, 6e-3} {
		f, err := ex.CheckFeasibility(thermal.Powers{
			Chip: chip, VCSEL: pv, Driver: pv, Heater: 0.3 * pv,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "violates"
		if f.Feasible {
			verdict = "satisfies"
		}
		fmt.Printf("  Pv=%3.0f mW: max gradient %.2f °C — %s the constraint\n",
			pv*1e3, f.MaxGradient, verdict)
	}
}
