// Command dse runs the paper's design-space explorations from the command
// line: the Fig. 9-a temperature sweep, the Fig. 9-b gradient grid, the
// Fig. 9-b/10 heater exploration, the feasibility frontier under the 1 °C
// gradient constraint, and the per-activity optimal heater ratio.
//
// Usage:
//
//	dse [-res fast] [-chip 25] [-activity uniform] [-seed 1]
//	    [-mode all|temps|grid|heater|feasible]
//	    [-solver jacobi-cg|ssor-cg|mg-cg] [-workers 0]
//	    [-shards host1:8080,host2:8080] [-coordinator http://ctl:9090]
//
// With -shards, the temps and grid sweeps scatter their row windows
// across the named vcseld workers and gather the rows back in order;
// chunks whose worker fails are rerouted to surviving workers and only
// then recomputed locally, so the run always completes. With
// -coordinator, the sweeps go to a vcselctl fleet coordinator instead,
// which places chunks on its least-loaded alive workers and handles
// failures fleet-side. The sequential searches (heater, feasible) stay
// local either way.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/serve"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
)

// sweeper is the grid-evaluation surface shared by the in-process
// Explorer and the sharded scatter/gather client.
type sweeper interface {
	SweepAvgTemp(chips, lasers []float64) ([][]dse.AvgTempPoint, error)
	SweepGradient(chip float64, lasers, heaters []float64) ([][]dse.GradientPoint, error)
}

func main() {
	res := flag.String("res", "fast", "mesh resolution: preview, coarse, fast or paper")
	chip := flag.Float64("chip", 25, "total chip power in watts")
	act := flag.String("activity", "uniform", "chip activity scenario")
	seed := flag.Int64("seed", 1, "seed for the random activity")
	mode := flag.String("mode", "all", "exploration: all, temps, grid, heater, feasible")
	solver := flag.String("solver", "", "sparse backend: one of "+strings.Join(sparse.Backends(), ", ")+" (default auto-selects per resolution)")
	workers := flag.Int("workers", 0, "parallel solver/sweep workers (0 = all CPUs)")
	shards := flag.String("shards", "", "comma-separated vcseld workers to scatter sweeps across (e.g. host1:8080,host2:8080)")
	coordinator := flag.String("coordinator", "", "vcselctl coordinator URL to route sweeps through (overrides -shards)")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("dse: ")

	spec, err := thermal.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	if spec.Res, err = thermal.ResolutionByName(*res); err != nil {
		log.Fatal(err)
	}
	spec.Solver = *solver
	spec.Workers = *workers
	scenario, err := activity.ByName(*act, *seed)
	if err != nil {
		log.Fatal(err)
	}

	// localExplorer builds the in-process model + basis on first use: the
	// default evaluation path, the sequential-search engine, and the
	// sharded client's retry fallback. Lazy so a fully sharded sweep run
	// never pays the local basis build.
	var once sync.Once
	var lex *dse.Explorer
	var lerr error
	localExplorer := func() (*dse.Explorer, error) {
		once.Do(func() {
			m, err := core.NewWithSpec(spec, snr.DefaultConfig())
			if err != nil {
				lerr = err
				return
			}
			fmt.Printf("model: %d cells; building %s basis...\n", m.Model().NumCells(), scenario.Name())
			lex, lerr = m.Explorer(scenario)
		})
		return lex, lerr
	}

	// -coordinator is sugar for -shards with the coordinator as the only
	// "worker": the coordinator serves the same sweep API and
	// sub-scatters across its fleet, while the preflight (GET /v1/specs)
	// and the local fallback keep working unchanged at this layer.
	targets := *shards
	if *coordinator != "" {
		targets = *coordinator
	}

	var grids sweeper
	if targets == "" {
		if grids, err = localExplorer(); err != nil {
			log.Fatal(err)
		}
	} else {
		client, err := serve.NewShardClient(targets, serve.Scenario{
			Activity: *act,
			Seed:     *seed,
		}, localExplorer)
		if err != nil {
			log.Fatal(err)
		}
		// Refuse to merge rows from workers meshing at a different
		// resolution, or solving with a different backend, than this
		// run — locally retried chunks must be exchangeable with fleet
		// rows.
		client.ExpectRes = &spec.Res
		client.ExpectSolver = spec.EffectiveSolver()
		fmt.Printf("scattering sweeps across %d workers: %s\n", len(client.Workers), strings.Join(client.Workers, ", "))
		grids = client
	}

	all := *mode == "all"
	if all || *mode == "temps" {
		temps(grids, *chip)
	}
	if all || *mode == "grid" {
		grid(grids, *chip)
	}
	if all || *mode == "heater" {
		ex, err := localExplorer()
		if err != nil {
			log.Fatal(err)
		}
		heater(ex, *chip)
	}
	if all || *mode == "feasible" {
		ex, err := localExplorer()
		if err != nil {
			log.Fatal(err)
		}
		feasible(ex, *chip)
	}
}

func temps(sw sweeper, chip float64) {
	chips := []float64{chip * 0.5, chip * 0.75, chip, chip * 1.25}
	lasers := []float64{0, 2e-3, 4e-3, 6e-3}
	table, err := sw.SweepAvgTemp(chips, lasers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmean ONI temperature (°C):")
	fmt.Println("  Pchip\\Pv(mW):      0      2      4      6")
	for i, row := range table {
		fmt.Printf("  %6.2f W    ", chips[i])
		for _, pt := range row {
			fmt.Printf(" %6.2f", pt.MeanONITemp)
		}
		fmt.Println()
	}
}

func grid(sw sweeper, chip float64) {
	lasers := []float64{1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3}
	heaters := []float64{0, 0.5e-3, 1e-3, 1.5e-3, 2e-3}
	table, err := sw.SweepGradient(chip, lasers, heaters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmean intra-ONI gradient (°C):")
	fmt.Print("  Pv\\Ph(mW):  ")
	for _, ph := range heaters {
		fmt.Printf(" %6.1f", ph*1e3)
	}
	fmt.Println()
	for i, row := range table {
		fmt.Printf("  %4.0f mW     ", lasers[i]*1e3)
		for _, pt := range row {
			fmt.Printf(" %6.2f", pt.MeanGradient)
		}
		fmt.Println()
	}
}

func heater(ex *dse.Explorer, chip float64) {
	fmt.Println("\noptimal heater power per laser power:")
	for _, pv := range []float64{1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3} {
		opt, err := ex.OptimalHeater(chip, pv, pv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Pv=%3.0f mW: Ph*=%.2f mW (ratio %.2f), gradient %.2f → %.2f °C\n",
			pv*1e3, opt.PHeater*1e3, opt.Ratio, opt.GradientNoHeater, opt.MeanGradient)
	}
}

func feasible(ex *dse.Explorer, chip float64) {
	fmt.Printf("\nfeasibility under the %.1f °C gradient constraint (heater ratio 0.3):\n", dse.GradientLimit)
	pvMax, err := ex.MaxFeasibleLaserPower(chip, 0.3, 10e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  max feasible P_VCSEL: %.2f mW\n", pvMax*1e3)
	for _, pv := range []float64{1e-3, 2e-3, 4e-3, 6e-3} {
		f, err := ex.CheckFeasibility(thermal.Powers{
			Chip: chip, VCSEL: pv, Driver: pv, Heater: 0.3 * pv,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "violates"
		if f.Feasible {
			verdict = "satisfies"
		}
		fmt.Printf("  Pv=%3.0f mW: max gradient %.2f °C — %s the constraint\n",
			pv*1e3, f.MaxGradient, verdict)
	}
}
