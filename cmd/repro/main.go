// Command repro regenerates every table and figure of the paper's
// evaluation section in one run and prints paper-vs-measured values.
//
// Usage:
//
//	repro [-res coarse|fast|paper] [-experiment all|fig8|fig9a|fig9b|fig10|fig12|xbar|table1|transient]
//	      [-solver jacobi-cg|ssor-cg|mg-cg] [-workers 0]
//	      [-steps 200] [-dt 1e-3] [-checkpoint warmup.ckpt] [-resume warmup.ckpt]
//
// The fast (10 µm) resolution reproduces the paper's trends in a few
// minutes; paper (5 µm) matches the published meshing strategy but takes
// considerably longer.
//
// The transient experiment (explicit only — not part of "all") integrates
// the lasers-on warm-up from the chip-only steady state. -checkpoint
// writes a resumable checkpoint file every 25 steps (and at the end);
// -resume continues a previous run from such a file — the restored
// trajectory is bit-identical to an uninterrupted one, and a checkpoint
// taken on a different mesh, power vector or solver refuses cleanly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/fvm"
	"vcselnoc/internal/mrr"
	"vcselnoc/internal/ornoc"
	"vcselnoc/internal/photodiode"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
	"vcselnoc/internal/vcsel"
	"vcselnoc/internal/waveguide"
	"vcselnoc/internal/xbar"
)

func main() {
	res := flag.String("res", "fast", "mesh resolution: preview, coarse, fast or paper")
	exp := flag.String("experiment", "all", "which experiment to run: all, table1, fig5b, fig8, fig9a, fig9b, fig10, fig12, xbar, transient (explicit only)")
	solver := flag.String("solver", "", "sparse backend: one of "+strings.Join(sparse.Backends(), ", ")+" (default auto-selects per resolution)")
	workers := flag.Int("workers", 0, "parallel solver/sweep workers (0 = all CPUs)")
	steps := flag.Int("steps", 200, "transient experiment: implicit-Euler steps to integrate")
	dt := flag.Float64("dt", 1e-3, "transient experiment: time step in seconds")
	checkpoint := flag.String("checkpoint", "", "transient experiment: write a resumable checkpoint to this file every 25 steps")
	resume := flag.String("resume", "", "transient experiment: resume from a checkpoint file written by -checkpoint")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("repro: ")

	spec, err := thermal.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	if spec.Res, err = thermal.ResolutionByName(*res); err != nil {
		log.Fatal(err)
	}
	spec.Solver = *solver
	spec.Workers = *workers

	all := *exp == "all"
	want := func(name string) bool { return all || *exp == name }
	ranAny := false

	// The transient warm-up is long-running and parameterised, so it only
	// runs when asked for explicitly.
	if *exp == "transient" {
		runTransient(spec, *steps, *dt, *checkpoint, *resume)
		return
	}

	if want("table1") {
		table1()
		ranAny = true
	}
	if want("fig5b") {
		fig5b()
		ranAny = true
	}
	if want("fig8") {
		fig8()
		ranAny = true
	}
	if want("xbar") {
		xbarTable()
		ranAny = true
	}
	if want("fig9a") || want("fig9b") || want("fig10") || want("fig12") {
		m, err := core.NewWithSpec(spec, snr.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		fmt.Printf("building thermal model (%d cells) and uniform basis...\n", m.Model().NumCells())
		ex, err := m.Explorer(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("basis ready in %v\n", time.Since(start))
		if want("fig9a") {
			fig9a(ex)
		}
		if want("fig9b") {
			fig9b(ex)
		}
		if want("fig10") {
			fig10(ex)
		}
		if want("fig12") {
			fig12(m)
		}
		ranAny = true
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runTransient integrates the lasers-on warm-up (extension beyond the
// paper's steady-state study) with optional checkpointing and resume.
func runTransient(spec thermal.Spec, steps int, dt float64, checkpointPath, resumePath string) {
	m, err := thermal.NewModel(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transient warm-up: %d cells, dt=%g s, %d steps, %s solver\n",
		m.NumCells(), dt, steps, spec.EffectiveSolver())
	powers := thermal.Powers{Chip: 25, VCSEL: 3.6e-3, Driver: 3.6e-3, Heater: 1.08e-3}
	ts := thermal.TransientSpec{
		TimeStep: dt,
		Steps:    steps,
		Observer: func(o thermal.TransientObservation) {
			if o.Step%10 == 0 || o.Step == steps {
				fmt.Printf("  step %4d  t=%7.3f s  peak %6.2f °C  max gradient %5.3f °C  (%d solver iters)\n",
					o.Step, o.TimeS, o.PeakTemp, o.MaxGradient, o.SolverIterations)
			}
		},
	}
	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := fvm.DecodeTransientCheckpoint(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		ts.Resume = cp
		fmt.Printf("  resuming from %s (step %d)\n", resumePath, cp.Step)
	}
	if checkpointPath != "" {
		ts.Checkpoint = func(cp *fvm.TransientCheckpoint) error {
			tmp := checkpointPath + ".tmp"
			f, err := os.Create(tmp)
			if err != nil {
				return err
			}
			if err := cp.Encode(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			return os.Rename(tmp, checkpointPath)
		}
	}
	start := time.Now()
	res, err := m.SolveTransient(powers, ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v: mean ONI %.2f °C, max gradient %.3f °C, chip max %.2f °C\n",
		time.Since(start).Round(time.Millisecond), res.MeanONITemp(), res.MaxONIGradient(), res.ChipMax)
	if checkpointPath != "" {
		fmt.Printf("checkpoint written to %s\n", checkpointPath)
	}
}

func table1() {
	mr := mrr.DefaultParams()
	det := photodiode.DefaultParams()
	loss := waveguide.DefaultLossBudget()
	fmt.Println("\n=== Table 1: technological parameters ===")
	fmt.Printf("  wavelength range        : %g nm     (paper 1550 nm)\n", mr.ResonanceNM)
	fmt.Printf("  BW 3dB                  : %g nm     (paper 1.55 nm)\n", mr.FWHMNM)
	fmt.Printf("  photodetector threshold : %g dBm    (paper -20 dBm)\n", det.SensitivityDBm)
	fmt.Printf("  thermal sensitivity     : %g nm/°C  (paper 0.1 nm/°C)\n", mr.DLambdaDT)
	fmt.Printf("  propagation loss        : %g dB/cm  (paper 0.5 dB/cm)\n", loss.PropagationDBPerCM)
}

func fig5b() {
	ring, err := mrr.New(mrr.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig. 5-b: MR transmission vs misalignment ===")
	fmt.Println("  δ(nm)    drop   through")
	for _, d := range []float64{-2, -1.55, -0.775, -0.3, -0.1, 0, 0.1, 0.3, 0.775, 1.55, 2} {
		fmt.Printf("  %+5.2f   %5.3f   %5.3f\n",
			d, ring.DropFraction(1550+d, 1550), ring.ThroughFraction(1550+d, 1550))
	}
	det, err := ring.DetuningForDrop(0.5)
	if err != nil {
		log.Fatal(err)
	}
	dt, err := ring.TemperatureForDetuning(det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  50%% wrongly dropped at ±%.3f nm ≡ %.2f °C (paper: 0.77 nm / 7.7 °C)\n", det, dt)
}

func fig8() {
	dev, err := vcsel.New(vcsel.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig. 8-b: VCSEL wall-plug efficiency vs temperature ===")
	fmt.Println("  T(°C)   peak η   at I(mA)    [paper anchors: ~18% @10, ~15% @40, ~4% @60]")
	for _, temp := range []float64{10, 20, 30, 40, 50, 60, 70} {
		eff, cur, err := dev.PeakEfficiency(temp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f    %5.1f%%   %5.2f\n", temp, eff*100, cur*1e3)
	}
	fmt.Println("\n=== Fig. 8-c: OP vs dissipated power (thermal rollover) ===")
	for _, temp := range []float64{40, 55, 70} {
		fmt.Printf("  T=%2.0f°C:", temp)
		for _, i := range []float64{2e-3, 4e-3, 6e-3, 8e-3, 10e-3} {
			pt, err := dev.Operate(i, temp)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  (%.1f→%.2f)", pt.DissipatedPower*1e3, pt.OpticalPower*1e3)
		}
		fmt.Println("   [Pdiss(mW)→OP(mW)]")
	}
}

func fig9a(ex *dse.Explorer) {
	chips := []float64{12.5, 18.75, 25, 31.25}
	lasers := []float64{0, 1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3}
	table, err := ex.SweepAvgTemp(chips, lasers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig. 9-a: mean ONI temperature (°C) ===")
	fmt.Println("  Pchip\\Pv(mW):     0      1      2      3      4      5      6")
	for i, row := range table {
		fmt.Printf("  %6.2f W   ", chips[i])
		for _, pt := range row {
			fmt.Printf(" %6.2f", pt.MeanONITemp)
		}
		fmt.Println()
	}
	fmt.Printf("  responses: %+.1f °C per 18.75 W chip power (paper ~+9.9), %+.1f °C per 6 mW laser power (paper ~+11)\n",
		table[3][0].MeanONITemp-table[0][0].MeanONITemp,
		table[2][6].MeanONITemp-table[2][0].MeanONITemp)
}

func fig9b(ex *dse.Explorer) {
	lasers := []float64{1e-3, 2e-3, 4e-3, 6e-3}
	fmt.Println("\n=== Fig. 9-b: gradient vs heater power (V-curves) ===")
	for _, pv := range lasers {
		opt, err := ex.OptimalHeater(25, pv, pv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Pv=%3.0f mW: gradient %.2f °C (no heater) → %.2f °C at Ph=%.2f mW, ratio %.2f (paper 0.30)\n",
			pv*1e3, opt.GradientNoHeater, opt.MeanGradient, opt.PHeater*1e3, opt.Ratio)
	}
}

func fig10(ex *dse.Explorer) {
	lasers := []float64{1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3}
	rows, err := ex.HeaterComparison(25, lasers, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig. 10: with vs without MR heater (ratio 0.3) ===")
	fmt.Println("  Pv(mW)  grad w/o  grad w/   avg w/o   avg w/")
	for _, r := range rows {
		fmt.Printf("  %5.0f   %7.2f   %6.2f   %7.2f   %6.2f\n",
			r.PVCSEL*1e3, r.GradientWithout, r.GradientWith, r.AvgTempWithout, r.AvgTempWith)
	}
	fmt.Println("  paper: 1.0→0.3 °C at 1 mW, 5.8→1.3 °C at 6 mW, average-temperature cost ≤ 0.8 °C")
}

func fig12(m *core.Methodology) {
	acts := []activity.Scenario{
		activity.Uniform{},
		activity.Diagonal{},
		activity.Random{Seed: 7, Min: 0.5, Max: 1.5},
	}
	fmt.Println("\n=== Fig. 12: worst-case SNR (Pv=3.6 mW, Ph=1.08 mW, 24 W chip) ===")
	for _, act := range acts {
		fmt.Printf("  %-8s:", act.Name())
		for _, cs := range []ornoc.CaseStudy{ornoc.Case18mm, ornoc.Case32mm, ornoc.Case47mm} {
			r, err := m.SNRAnalysis(core.SNRScenario{
				Case: cs, Activity: act, ChipPower: 24,
				PVCSEL: 3.6e-3, PHeater: 1.08e-3, Pattern: core.Neighbour,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.1fmm %6.1f dB (sig %.3f mW, ΔT %.2f °C)",
				r.RingLengthM*1e3, r.Report.WorstSNRdB, r.Report.MeanSignalW*1e3,
				r.NodeTempMax-r.NodeTempMin)
		}
		fmt.Println()
	}
	fmt.Println("  paper: uniform 38/25/13 dB, diagonal 19/13/10 dB, random 20/17/12 dB")
}

func xbarTable() {
	fmt.Println("\n=== Ref [20]: crossbar insertion-loss comparison ===")
	for _, n := range []int{4, 8, 16} {
		cmp, err := xbar.Compare(n, 2e-3, waveguide.DefaultLossBudget())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d interfaces:", n)
		for _, topo := range xbar.AllTopologies() {
			a := cmp.Results[topo]
			fmt.Printf("  %s %.2f/%.2f dB", topo, a.WorstLossDB, a.AverageLossDB)
		}
		fmt.Printf("\n                ORNoC saves %.1f%% worst / %.1f%% avg (paper at 4×4: 42.5%%/38%%)\n",
			cmp.WorstSaving*100, cmp.AverageSaving*100)
	}
}
