// Command loadgen drives a running vcseld with synthetic gradient-query
// traffic and emits a loadreport.Report JSON artifact: latency
// percentiles and histogram, client-observed outcome counts (200 / 429 /
// 5xx), server-side counter deltas (admitted, shed, coalesced, solves,
// cache hits) scraped from /healthz around the run, and the server's own
// latency-histogram delta with the client-vs-server percentile skew —
// how much network and queueing the client pays on top of server time.
//
// Two traffic shapes:
//
//	uniform  every request picks a distinct deterministic operating
//	         point — exercises admission and the basis/query caches
//	         without contention on any one key.
//	hotkey   a -hot-fraction share of requests hit one shared operating
//	         point that rotates every -hot-rotate, so each rotation
//	         epoch opens with a cold concurrent burst on a never-seen
//	         point — the shape that proves query-granularity
//	         coalescing (the rest of the traffic is uniform).
//
// The -expect flag turns the binary into its own CI assertion: a
// comma-separated list of invariants checked after the run, exiting
// non-zero on violation. Tokens:
//
//	no5xx     no 5xx responses were observed
//	noshed    no 429 responses were observed
//	shed      at least one 429 was observed (the offered rate exceeded
//	          the admit rate, and the server actually defended itself)
//	coalesce  the server's coalesced-queries counter moved
//
// Usage (mirrors the CI load job):
//
//	loadgen -url http://127.0.0.1:8080 -shape hotkey -duration 5s \
//	    -concurrency 8 -rate 400 -clients 4 \
//	    -expect no5xx,shed,coalesce -out load_hotkey.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vcselnoc/internal/loadreport"
	"vcselnoc/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	url := flag.String("url", "http://127.0.0.1:8080", "vcseld base URL")
	shape := flag.String("shape", "uniform", "traffic shape: uniform or hotkey")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	concurrency := flag.Int("concurrency", 8, "worker goroutines")
	rate := flag.Float64("rate", 0, "offered queries/sec across all workers (0 = closed loop)")
	hotFraction := flag.Float64("hot-fraction", 0.9, "hotkey shape: share of requests on the hot point")
	hotRotate := flag.Duration("hot-rotate", 250*time.Millisecond, "hotkey shape: rotate the hot point this often (each rotation is a cold key)")
	points := flag.Int("points", 64, "uniform operating-point pool size")
	clients := flag.Int("clients", 4, "distinct X-Client-ID identities")
	spec := flag.String("spec", "", "spec name to query (empty = server default)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	expect := flag.String("expect", "", "comma-separated post-run assertions: no5xx, noshed, shed, coalesce")
	out := flag.String("out", "", "write the report JSON here (\"\" = stdout only)")
	flag.Parse()

	if *shape != "uniform" && *shape != "hotkey" {
		log.Fatalf("unknown -shape %q (want uniform or hotkey)", *shape)
	}
	if *concurrency < 1 {
		log.Fatal("-concurrency must be ≥ 1")
	}

	client := &http.Client{Timeout: *timeout}
	before, err := scrapeSpec(client, *url, *spec)
	if err != nil {
		log.Fatalf("pre-run healthz scrape: %v", err)
	}

	g := &generator{
		url:         strings.TrimRight(*url, "/") + "/v1/gradient",
		client:      client,
		shape:       *shape,
		spec:        *spec,
		points:      *points,
		hotFraction: *hotFraction,
		hotRotate:   *hotRotate,
		clients:     *clients,
		rate:        *rate,
		start:       time.Now(),
	}
	g.run(*duration, *concurrency, *rate)

	after, err := scrapeSpec(client, *url, *spec)
	if err != nil {
		log.Fatalf("post-run healthz scrape: %v", err)
	}

	rep := g.report(before, after)
	if rep.Server != nil {
		log.Printf("client p50/p99 %.2f/%.2f ms, server p50/p99 %.2f/%.2f ms, skew p50/p99 %+.2f/%+.2f ms",
			rep.Latency.P50, rep.Latency.P99, rep.Server.P50, rep.Server.P99,
			rep.Server.SkewP50, rep.Server.SkewP99)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if problems := check(rep, *expect); len(problems) > 0 {
		for _, p := range problems {
			log.Printf("EXPECT FAILED: %s", p)
		}
		os.Exit(1)
	}
}

// generator owns one load run's traffic and bookkeeping.
type generator struct {
	url         string
	client      *http.Client
	shape       string
	spec        string
	points      int
	hotFraction float64
	hotRotate   time.Duration
	clients     int
	rate        float64
	start       time.Time

	sent, ok, shed, err5xx, errOther atomic.Int64

	mu      sync.Mutex
	samples []float64 // latency of every completed request, ms
	elapsed time.Duration
}

// run fires workers until the deadline. With a positive rate each worker
// paces itself with a ticker at rate/concurrency; otherwise the loop is
// closed (next request as soon as the previous one answers).
func (g *generator) run(duration time.Duration, concurrency int, rate float64) {
	deadline := g.start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var tick *time.Ticker
			if rate > 0 {
				tick = time.NewTicker(time.Duration(float64(time.Second) * float64(concurrency) / rate))
				defer tick.Stop()
			}
			for i := 0; ; i++ {
				if time.Now().After(deadline) {
					return
				}
				g.one(w, i)
				if tick != nil {
					<-tick.C
				}
			}
		}(w)
	}
	wg.Wait()
	g.elapsed = time.Since(g.start)
}

// one sends a single query and records its outcome.
func (g *generator) one(worker, i int) {
	body := g.body(worker, i)
	req, err := http.NewRequest(http.MethodPost, g.url, bytes.NewReader(body))
	if err != nil {
		g.errOther.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", fmt.Sprintf("loadgen-%d", worker%g.clients))
	t0 := time.Now()
	resp, err := g.client.Do(req)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	g.sent.Add(1)
	if err != nil {
		g.errOther.Add(1)
		return
	}
	resp.Body.Close()
	g.mu.Lock()
	g.samples = append(g.samples, ms)
	g.mu.Unlock()
	switch {
	case resp.StatusCode == http.StatusOK:
		g.ok.Add(1)
	case resp.StatusCode == http.StatusTooManyRequests:
		g.shed.Add(1)
	case resp.StatusCode >= 500:
		g.err5xx.Add(1)
	default:
		g.errOther.Add(1)
	}
}

// body picks the operating point for one request. Uniform traffic walks
// a deterministic pool; hotkey traffic sends -hot-fraction of requests
// to a shared point whose index rotates every -hot-rotate. The epoch is
// derived from the wall clock (not run start), so rotation points stay
// fresh across repeated runs against one daemon and each epoch's first
// concurrent wave hits a never-seen (cold) point — the condition under
// which query coalescing is observable.
func (g *generator) body(worker, i int) []byte {
	idx := worker*31 + i
	if g.shape == "hotkey" && float64(idx%100)/100 < g.hotFraction {
		idx = 1_000_000 + int(time.Now().UnixNano()/int64(g.hotRotate))
	} else {
		idx %= g.points
	}
	sc := serve.Scenario{
		Spec:    g.spec,
		Chip:    20 + float64(idx%97)*0.05,
		PVCSEL:  (1.0 + float64(idx%53)*0.05) * 1e-3,
		PHeater: float64(idx%29) * 0.05e-3,
	}
	b, err := json.Marshal(sc)
	if err != nil {
		panic(err) // static struct, cannot fail
	}
	return b
}

// report assembles the artifact from client counters and the healthz
// deltas.
func (g *generator) report(before, after serve.SpecInfo) loadreport.Report {
	rep := loadreport.Report{
		Shape:           g.shape,
		DurationS:       g.elapsed.Seconds(),
		OfferedQPS:      g.rate,
		Sent:            g.sent.Load(),
		OK:              g.ok.Load(),
		Shed:            g.shed.Load(),
		Err5xx:          g.err5xx.Load(),
		ErrOther:        g.errOther.Load(),
		ServerAdmitted:  after.Admitted - before.Admitted,
		ServerShed:      after.Shed - before.Shed,
		ServerCoalesced: after.CoalescedQueries - before.CoalescedQueries,
		ServerSolves:    after.BatchedQueries - before.BatchedQueries,
		ServerCacheHits: after.CacheHits - before.CacheHits,
	}
	rep.Latency, rep.Hist = loadreport.Summarize(g.samples)
	rep.Derive()
	if delta := after.QueryLatency.Sub(before.QueryLatency); delta != nil && delta.Count > 0 {
		rep.Server = &loadreport.ServerLatency{
			P50:   delta.Quantile(0.50) * 1e3,
			P90:   delta.Quantile(0.90) * 1e3,
			P99:   delta.Quantile(0.99) * 1e3,
			Count: delta.Count,
		}
		rep.Server.SkewP50 = rep.Latency.P50 - rep.Server.P50
		rep.Server.SkewP99 = rep.Latency.P99 - rep.Server.P99
	}
	return rep
}

// scrapeSpec fetches /healthz and returns the targeted spec's counters.
func scrapeSpec(client *http.Client, baseURL, spec string) (serve.SpecInfo, error) {
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/healthz")
	if err != nil {
		return serve.SpecInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.SpecInfo{}, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return serve.SpecInfo{}, err
	}
	if spec == "" {
		spec = serve.DefaultSpec
	}
	for _, si := range h.Specs {
		if si.Name == spec {
			return si, nil
		}
	}
	return serve.SpecInfo{}, fmt.Errorf("healthz: spec %q not registered", spec)
}

// check evaluates the -expect assertions against the finished report.
func check(rep loadreport.Report, expect string) []string {
	var problems []string
	for _, tok := range strings.Split(expect, ",") {
		switch strings.TrimSpace(tok) {
		case "":
		case "no5xx":
			if rep.Err5xx > 0 {
				problems = append(problems, fmt.Sprintf("no5xx: saw %d 5xx responses", rep.Err5xx))
			}
		case "noshed":
			if rep.Shed > 0 {
				problems = append(problems, fmt.Sprintf("noshed: saw %d 429 responses", rep.Shed))
			}
		case "shed":
			if rep.Shed == 0 {
				problems = append(problems, "shed: offered load above the admit rate produced zero 429s")
			}
		case "coalesce":
			if rep.ServerCoalesced == 0 {
				problems = append(problems, "coalesce: server coalesced-queries counter never moved")
			}
		default:
			problems = append(problems, fmt.Sprintf("unknown -expect token %q", tok))
		}
	}
	return problems
}
