package main

import (
	"encoding/json"
	"testing"
	"time"

	"vcselnoc/internal/loadreport"
	"vcselnoc/internal/serve"
)

// TestBodyDeterministicPool: uniform bodies cycle a fixed pool and the
// same (worker, i) always produces the same operating point.
func TestBodyDeterministicPool(t *testing.T) {
	g := &generator{shape: "uniform", points: 8, start: time.Now()}
	a := g.body(2, 5)
	b := g.body(2, 5)
	if string(a) != string(b) {
		t.Fatalf("body not deterministic: %s vs %s", a, b)
	}
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		var sc serve.Scenario
		if err := json.Unmarshal(g.body(0, i), &sc); err != nil {
			t.Fatal(err)
		}
		if sc.Chip < 20 || sc.PVCSEL <= 0 {
			t.Fatalf("implausible operating point: %+v", sc)
		}
		seen[string(g.body(0, i))] = true
	}
	if len(seen) > g.points {
		t.Fatalf("uniform pool produced %d distinct points, cap %d", len(seen), g.points)
	}
}

// TestBodyHotkeyRotates: within one rotation epoch all hot requests share
// one body; across epochs the hot point changes (each epoch is cold).
func TestBodyHotkeyRotates(t *testing.T) {
	g := &generator{shape: "hotkey", points: 8, hotFraction: 1.0, hotRotate: 50 * time.Millisecond, start: time.Now()}
	a := g.body(0, 0)
	b := g.body(7, 3)
	if string(a) != string(b) {
		t.Fatalf("hot requests in one epoch differ: %s vs %s", a, b)
	}
	time.Sleep(60 * time.Millisecond)
	c := g.body(0, 0)
	if string(a) == string(c) {
		t.Fatal("hot point did not rotate across epochs")
	}
}

// TestCheckExpectTokens pins the CI assertion surface.
func TestCheckExpectTokens(t *testing.T) {
	clean := loadreport.Report{Shed: 0, Err5xx: 0, ServerCoalesced: 3}
	if p := check(clean, "no5xx,noshed,coalesce"); len(p) != 0 {
		t.Fatalf("clean run: %v", p)
	}
	overloaded := loadreport.Report{Shed: 10, ServerCoalesced: 5}
	if p := check(overloaded, "no5xx,shed,coalesce"); len(p) != 0 {
		t.Fatalf("overloaded run: %v", p)
	}
	if p := check(clean, "shed"); len(p) != 1 {
		t.Fatalf("shed on clean run should fail: %v", p)
	}
	if p := check(overloaded, "noshed"); len(p) != 1 {
		t.Fatalf("noshed on overloaded run should fail: %v", p)
	}
	if p := check(loadreport.Report{Err5xx: 1}, "no5xx"); len(p) != 1 {
		t.Fatalf("no5xx with errors should fail: %v", p)
	}
	if p := check(clean, "bogus"); len(p) != 1 {
		t.Fatalf("unknown token should fail: %v", p)
	}
	if p := check(clean, ""); len(p) != 0 {
		t.Fatalf("empty expect: %v", p)
	}
}
