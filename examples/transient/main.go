// Transient (extension beyond the paper's steady-state study): watch the
// ONIs warm up after the VCSELs switch on, starting from the chip-only
// steady state — the timescale that bounds how fast any run-time MR
// calibration loop must react.
//
//	go run ./examples/transient
package main

import (
	"fmt"
	"log"
	"strings"

	"vcselnoc"
)

func main() {
	log.SetFlags(0)

	spec, err := vcselnoc.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	spec.Res = vcselnoc.CoarseResolution()
	model, err := vcselnoc.NewThermalModel(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Steady state with the chip running but the ONoC dark.
	before, err := model.Solve(vcselnoc.Powers{Chip: 25})
	if err != nil {
		log.Fatal(err)
	}
	// Steady state with the lasers on, for reference.
	after, err := model.Solve(vcselnoc.Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3, Heater: 1.2e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ONoC off: ONIs %.2f °C   |   ONoC on (steady): %.2f °C, gradient %.2f °C\n\n",
		before.MeanONITemp(), after.MeanONITemp(), after.MaxONIGradient())

	fmt.Println("switching the lasers on at t=0 (implicit Euler, 20 ms steps):")
	fmt.Println("    t(ms)   mean ONI(°C)  worst gradient(°C)")
	span := after.MeanONITemp() - before.MeanONITemp()
	final, err := model.SolveTransient(
		vcselnoc.Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3, Heater: 1.2e-3},
		vcselnoc.TransientSpec{
			TimeStep: 20e-3,
			Steps:    15,
			Initial:  before,
			Snapshot: func(step int, tm float64, r *vcselnoc.ThermalResult) {
				frac := (r.MeanONITemp() - before.MeanONITemp()) / span
				bar := int(frac * 30)
				if bar < 0 {
					bar = 0
				}
				if bar > 30 {
					bar = 30
				}
				fmt.Printf("  %7.0f   %10.2f   %10.2f   %s\n",
					tm*1e3, r.MeanONITemp(), r.MaxONIGradient(), strings.Repeat("█", bar))
			},
		})
	if err != nil {
		log.Fatal(err)
	}

	reached := (final.MeanONITemp() - before.MeanONITemp()) / span * 100
	fmt.Printf("\nafter 300 ms the ONIs reached %.0f%% of the steady-state rise\n", reached)
	fmt.Println("→ MR calibration must track thermal transients on the 10–100 ms scale,")
	fmt.Println("  which is why the paper reduces the *design-time* gradient instead of")
	fmt.Println("  relying purely on run-time tuning.")
}
