// Activitysnr: reproduce the Fig. 12 study — worst-case SNR of the three
// ONI placements under uniform, diagonal and random chip activities, with
// the per-communication breakdown for the most stressed scenario.
//
//	go run ./examples/activitysnr
package main

import (
	"fmt"
	"log"

	"vcselnoc"
)

func main() {
	log.SetFlags(0)

	spec, err := vcselnoc.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	spec.Res = vcselnoc.CoarseResolution()
	m, err := vcselnoc.NewWithSpec(spec, vcselnoc.DefaultSNRConfig())
	if err != nil {
		log.Fatal(err)
	}

	activities := []vcselnoc.ActivityScenario{
		vcselnoc.UniformActivity{},
		vcselnoc.DiagonalActivity{},
		vcselnoc.RandomActivity{Seed: 7, Min: 0.5, Max: 1.5},
	}
	cases := []vcselnoc.CaseStudy{vcselnoc.Case18mm, vcselnoc.Case32mm, vcselnoc.Case47mm}

	fmt.Println("worst-case SNR (dB) — Pv=3.6 mW, Ph=1.08 mW, 24 W chip")
	fmt.Println("paper: uniform 38/25/13, diagonal 19/13/10, random 20/17/12")
	var worst *vcselnoc.SNRResult
	for _, act := range activities {
		fmt.Printf("  %-8s:", act.Name())
		for _, cs := range cases {
			r, err := m.SNRAnalysis(vcselnoc.SNRScenario{
				Case: cs, Activity: act, ChipPower: 24,
				PVCSEL: 3.6e-3, PHeater: 1.08e-3, Pattern: vcselnoc.Neighbour,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.1f mm → %5.1f dB (ΔT %.1f °C)",
				r.RingLengthM*1e3, r.Report.WorstSNRdB, r.NodeTempMax-r.NodeTempMin)
			if worst == nil || r.Report.WorstSNRdB < worst.Report.WorstSNRdB {
				worst = r
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nmost stressed scenario: %v under %s activity\n",
		worst.Scenario.Case, worst.Scenario.Activity.Name())
	fmt.Println("  comm        signal(mW)  crosstalk(mW)  SNR(dB)")
	for _, cr := range worst.Report.PerComm {
		fmt.Printf("  %2d → %-2d    %9.4f   %11.5f   %7.1f\n",
			cr.Comm.Src, cr.Comm.Dst, cr.SignalW*1e3, cr.CrosstalkW*1e3, cr.SNRdB)
	}
}
