// Heatersweep: reproduce the Fig. 9-b exploration for a custom design —
// sweep the MR heater power at several laser powers, plot the V-shaped
// gradient curves as ASCII, and report each optimum.
//
//	go run ./examples/heatersweep
package main

import (
	"fmt"
	"log"
	"strings"

	"vcselnoc"
)

func main() {
	log.SetFlags(0)

	spec, err := vcselnoc.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	spec.Res = vcselnoc.CoarseResolution()
	m, err := vcselnoc.NewWithSpec(spec, vcselnoc.DefaultSNRConfig())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := m.Explorer(nil)
	if err != nil {
		log.Fatal(err)
	}

	const chip = 25.0
	lasers := []float64{2e-3, 4e-3, 6e-3}
	heaters := make([]float64, 25)
	for i := range heaters {
		heaters[i] = float64(i) * 0.125e-3
	}
	table, err := ex.SweepGradient(chip, lasers, heaters)
	if err != nil {
		log.Fatal(err)
	}

	// ASCII plot: one row per heater step, one column block per laser power.
	fmt.Println("mean intra-ONI gradient (°C) vs heater power — the V-shape of Fig. 9-b")
	fmt.Println("Ph(mW)   Pv=2mW              Pv=4mW              Pv=6mW")
	maxG := 0.0
	for _, row := range table {
		for _, p := range row {
			if p.MeanGradient > maxG {
				maxG = p.MeanGradient
			}
		}
	}
	for j := range heaters {
		fmt.Printf("%5.2f  ", heaters[j]*1e3)
		for i := range lasers {
			g := table[i][j].MeanGradient
			bar := int(g / maxG * 16)
			fmt.Printf(" %5.2f %-12s", g, strings.Repeat("▇", bar))
		}
		fmt.Println()
	}

	fmt.Println("\noptima (golden-section search):")
	for _, pv := range lasers {
		opt, err := ex.OptimalHeater(chip, pv, pv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Pv=%.0f mW: Ph*=%.2f mW, ratio %.2f (paper: 0.30), gradient %.2f → %.2f °C\n",
			pv*1e3, opt.PHeater*1e3, opt.Ratio, opt.GradientNoHeater, opt.MeanGradient)
	}

	// How far can the laser power go before violating the 1 °C rule?
	pvMax, err := ex.MaxFeasibleLaserPower(chip, 0.3, 10e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith the 0.3 heater ratio, the %g °C gradient constraint allows P_VCSEL ≤ %.2f mW\n",
		vcselnoc.GradientLimit, pvMax*1e3)
}
