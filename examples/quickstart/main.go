// Quickstart: build the paper's SCC + ONoC system, run the complete
// thermal-aware design flow at one operating point, and print the verdict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vcselnoc"
)

func main() {
	log.SetFlags(0)

	// The paper's system with a quick mesh so the example runs in seconds.
	spec, err := vcselnoc.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	spec.Res = vcselnoc.CoarseResolution()
	m, err := vcselnoc.NewWithSpec(spec, vcselnoc.DefaultSNRConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d mesh cells, %d ONIs on the optical layer\n",
		m.Model().NumCells(), len(m.Model().ONIs()))

	// Step 1 — thermal analysis at the paper's SNR operating point:
	// 24 W chip, 3.6 mW per laser (driver matched), 1.08 mW per heater.
	res, err := m.ThermalAnalysis(vcselnoc.Powers{
		Chip:   24,
		VCSEL:  3.6e-3,
		Driver: 3.6e-3,
		Heater: 1.08e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	min, max := res.ONITempRange()
	fmt.Printf("thermal: ONIs average %.1f °C (spread %.1f–%.1f), worst intra-ONI gradient %.2f °C\n",
		res.MeanONITemp(), min, max, res.MaxONIGradient())

	// Step 2 — the paper's headline exploration: the heater power that
	// minimises the intra-ONI gradient.
	opt, err := m.OptimalHeaterRatio(nil, 24, 3.6e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exploration: optimal P_heater = %.2f mW = %.2f × P_VCSEL (paper: 0.3), gradient %.2f → %.2f °C\n",
		opt.PHeater*1e3, opt.Ratio, opt.GradientNoHeater, opt.MeanGradient)

	// Step 3 — SNR analysis of the full 4×4 ONI ring.
	ev, err := m.EvaluateDesign(vcselnoc.SNRScenario{
		Case:      vcselnoc.Case47mm,
		ChipPower: 24,
		PVCSEL:    3.6e-3,
		PHeater:   opt.PHeater,
		Pattern:   vcselnoc.Neighbour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: worst-case SNR %.1f dB over a %.1f mm ring, mean signal %.3f mW\n",
		ev.SNR.Report.WorstSNRdB, ev.SNR.RingLengthM*1e3, ev.SNR.Report.MeanSignalW*1e3)
	fmt.Printf("verdict: ONoC power %.2f W, gradient constraint satisfied: %v, reliable: %v\n",
		ev.ONoCPower, ev.Feasibility.Feasible, ev.Reliable)
}
