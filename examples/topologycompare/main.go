// Topologycompare: reproduce the insertion-loss comparison that motivates
// ORNoC (reference [20] of the paper): worst-case and average loss of
// ORNoC vs the Matrix, λ-router and Snake crossbars, across scales, and
// the resulting laser-power implication.
//
//	go run ./examples/topologycompare
package main

import (
	"fmt"
	"log"
	"math"

	"vcselnoc"
)

func main() {
	log.SetFlags(0)

	budget := vcselnoc.DefaultLossBudget()
	det, err := vcselnoc.NewDetector(vcselnoc.DefaultDetectorParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loss budget: 0.5 dB/cm propagation, 0.12 dB/crossing, 0.005 dB/ring pass, 0.5 dB/drop")
	fmt.Println()

	for _, n := range []int{4, 8, 16} {
		cmp, err := vcselnoc.CompareXbars(n, 2e-3, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d interfaces (2 mm pitch):\n", n)
		fmt.Println("  topology        worst(dB)   avg(dB)")
		for _, topo := range []vcselnoc.XbarTopology{
			vcselnoc.TopoORNoC, vcselnoc.TopoMatrix,
			vcselnoc.TopoLambdaRouter, vcselnoc.TopoSnake,
		} {
			a := cmp.Results[topo]
			fmt.Printf("  %-14s  %8.2f   %7.2f\n", topo, a.WorstLossDB, a.AverageLossDB)
		}
		fmt.Printf("  → ORNoC saves %.1f%% worst-case / %.1f%% average loss vs the best crossbar\n",
			cmp.WorstSaving*100, cmp.AverageSaving*100)
		if n == 16 {
			fmt.Println("    (paper, 4×4 scale: 42.5% worst-case, 38% average)")
		}

		// Translate the worst-case loss into the launch power required to
		// clear the −20 dBm receiver floor — the laser-power saving the
		// paper's Section II argues for.
		launch := func(lossDB float64) float64 {
			return det.SensitivityWatts() * math.Pow(10, lossDB/10)
		}
		orn := launch(cmp.Results[vcselnoc.TopoORNoC].WorstLossDB)
		snake := launch(cmp.Results[vcselnoc.TopoSnake].WorstLossDB)
		fmt.Printf("  → minimum launch power: ORNoC %.1f µW vs Snake %.1f µW\n\n",
			orn*1e6, snake*1e6)
	}
}
