package vcselnoc

// Mixed-precision guard on the real thermal model: the float32 V-cycle
// must not cost more than one extra outer CG iteration over the float64
// baseline on the model the benchmarks solve.

import (
	"os"
	"testing"

	"vcselnoc/internal/fvm"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
)

func solveIterations(t *testing.T, m *thermal.Model, precision string) int {
	t.Helper()
	power, err := m.PowerVector(thermal.Powers{Chip: 25, VCSEL: 3.6e-3, Driver: 3.6e-3, Heater: 1.08e-3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.System().SolveSteady(power, fvm.SolveOptions{
		Tolerance:   1e-8,
		Solver:      sparse.BackendMGCG,
		MGPrecision: precision,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sol.Stats.Iterations
}

func precisionPin(t *testing.T, res thermal.Resolution) {
	t.Helper()
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = res
	m, err := thermal.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	i64 := solveIterations(t, m, "float64")
	i32 := solveIterations(t, m, "float32")
	t.Logf("outer CG iterations: float64 %d, float32 %d", i64, i32)
	if i32 > i64+1 {
		t.Fatalf("float32 V-cycle costs %d outer iterations vs float64's %d: more than +1", i32, i64)
	}
}

// TestMGPrecisionIterationPin runs the guard at preview resolution always,
// and additionally at the bench resolution when VCSELNOC_BENCH_RES is set
// explicitly (the default bench tier is "fast", where a solve takes tens
// of seconds — too slow for tier-1 test runs).
func TestMGPrecisionIterationPin(t *testing.T) {
	t.Run("preview", func(t *testing.T) {
		precisionPin(t, thermal.PreviewResolution())
	})
	t.Run("bench", func(t *testing.T) {
		if os.Getenv("VCSELNOC_BENCH_RES") == "" {
			t.Skip("set VCSELNOC_BENCH_RES to pin the bench resolution tier")
		}
		precisionPin(t, benchResolution())
	})
}
