package vcselnoc

// The benchmark suite doubles as the experiment harness: every table and
// figure of the paper's evaluation section has a benchmark that
// regenerates its rows/series and prints them (once) alongside the paper's
// values. Run with:
//
//	go test -bench=. -benchmem
//
// Mesh resolution for the thermal benches comes from VCSELNOC_BENCH_RES
// (coarse|fast|paper, default fast). Ablation benches always run coarse to
// keep the suite's wall-clock bounded.

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/fvm"
	"vcselnoc/internal/mg"
	"vcselnoc/internal/mrr"
	"vcselnoc/internal/oni"
	"vcselnoc/internal/ornoc"
	"vcselnoc/internal/serve"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
	"vcselnoc/internal/units"
	"vcselnoc/internal/vcsel"
	"vcselnoc/internal/waveguide"
	"vcselnoc/internal/xbar"
)

func benchResolution() thermal.Resolution {
	switch os.Getenv("VCSELNOC_BENCH_RES") {
	case "preview":
		return thermal.PreviewResolution()
	case "coarse":
		return thermal.CoarseResolution()
	case "paper":
		return thermal.PaperResolution()
	default:
		return thermal.FastResolution()
	}
}

// benchMGKnobs reads the cmd/perfab sweep axes from the environment:
// VCSELNOC_MG_ORDERING and VCSELNOC_MG_PRECISION tune the mg-cg V-cycle,
// VCSELNOC_MG_COARSE forces a coarse-solve tier (sparse|band|iterative)
// with VCSELNOC_MG_COARSE_BUDGET capping the direct factorisation, and
// VCSELNOC_WORKERS caps solver goroutines. Empty variables leave the
// defaults (red-black ordering, auto precision, auto coarse ladder,
// GOMAXPROCS workers).
func benchMGKnobs(opts fvm.SolveOptions) fvm.SolveOptions {
	opts.MGOrdering = os.Getenv("VCSELNOC_MG_ORDERING")
	opts.MGPrecision = os.Getenv("VCSELNOC_MG_PRECISION")
	opts.MGCoarseSolver = os.Getenv("VCSELNOC_MG_COARSE")
	if v := os.Getenv("VCSELNOC_MG_COARSE_BUDGET"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n != 0 {
			opts.MGCoarseBudget = n
		}
	}
	if w := os.Getenv("VCSELNOC_WORKERS"); w != "" {
		if n, err := strconv.Atoi(w); err == nil && n > 0 {
			opts.Workers = n
		}
	}
	return opts
}

var (
	benchOnce sync.Once
	benchM    *core.Methodology
	benchErr  error
)

func benchMethodology(b *testing.B) *core.Methodology {
	b.Helper()
	benchOnce.Do(func() {
		spec, err := thermal.PaperSpec()
		if err != nil {
			benchErr = err
			return
		}
		spec.Res = benchResolution()
		benchM, benchErr = core.NewWithSpec(spec, snr.DefaultConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchM
}

var printOnce sync.Map

func printSeries(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(s)
	}
}

// BenchmarkTable1Parameters echoes the technology constants of Table 1 and
// times the consistency checks that validate them.
func BenchmarkTable1Parameters(b *testing.B) {
	mr := mrr.DefaultParams()
	det := DefaultDetectorParams()
	loss := DefaultLossBudget()
	printSeries("table1", fmt.Sprintf(`
Table 1 — technological parameters (paper value in parentheses)
  wavelength range        : %g nm           (1550 nm)
  MR 3dB bandwidth        : %g nm           (1.55 nm)
  photodetector threshold : %g dBm          (-20 dBm)
  thermal sensitivity     : %g nm/°C        (0.1 nm/°C)
  propagation loss        : %g dB/cm        (0.5 dB/cm)
`, mr.ResonanceNM, mr.FWHMNM, det.SensitivityDBm, mr.DLambdaDT, loss.PropagationDBPerCM))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mr.Validate(); err != nil {
			b.Fatal(err)
		}
		if err := det.Validate(); err != nil {
			b.Fatal(err)
		}
		if err := loss.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5bMRTransmission regenerates the MR drop/through curves of
// Fig. 5-b.
func BenchmarkFig5bMRTransmission(b *testing.B) {
	ring, err := mrr.New(mrr.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var sb []byte
	sb = append(sb, "\nFig. 5-b — MR transmission vs misalignment (50% drop at ±0.775 nm)\n  δ(nm)   drop    through\n"...)
	for _, d := range []float64{-2, -1.55, -0.775, -0.3, 0, 0.3, 0.775, 1.55, 2} {
		sb = append(sb, fmt.Sprintf("  %+5.2f   %5.3f   %5.3f\n",
			d, ring.DropFraction(1550+d, 1550), ring.ThroughFraction(1550+d, 1550))...)
	}
	printSeries("fig5b", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := -2.0; d <= 2; d += 0.01 {
			_ = ring.DropFraction(1550+d, 1550)
		}
	}
}

// BenchmarkFig8bVCSELEfficiency regenerates the wall-plug efficiency
// curves of Fig. 8-b (anchors: ~18 % peak at 10 °C, ~15 % at 40 °C, ~4 %
// at 60 °C).
func BenchmarkFig8bVCSELEfficiency(b *testing.B) {
	dev, err := vcsel.New(vcsel.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	currents := make([]float64, 60)
	for i := range currents {
		currents[i] = float64(i+1) * 0.25e-3
	}
	var sb []byte
	sb = append(sb, "\nFig. 8-b — peak wall-plug efficiency vs temperature\n  T(°C)  peak η    at I(mA)   [paper: 18% @10°C, 15% @40°C, 4% @60°C]\n"...)
	for _, temp := range []float64{10, 20, 30, 40, 50, 60, 70} {
		eff, cur, err := dev.PeakEfficiency(temp)
		if err != nil {
			b.Fatal(err)
		}
		sb = append(sb, fmt.Sprintf("  %4.0f   %5.1f%%   %5.2f\n", temp, eff*100, cur*1e3)...)
	}
	printSeries("fig8b", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, temp := range []float64{10, 30, 50, 70} {
			if _, err := dev.EfficiencyCurve(temp, currents); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8cVCSELOutput regenerates the optical-output vs dissipated
// power curves of Fig. 8-c (sub-linear rise, thermal rollover).
func BenchmarkFig8cVCSELOutput(b *testing.B) {
	dev, err := vcsel.New(vcsel.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	currents := make([]float64, 30)
	for i := range currents {
		currents[i] = float64(i+1) * 0.5e-3
	}
	var sb []byte
	sb = append(sb, "\nFig. 8-c — OP_VCSEL vs P_VCSEL (dissipated), T = 40 °C\n  Pdiss(mW)  OP(mW)\n"...)
	diss, op, err := dev.PowerCurve(40, currents)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < len(diss); i += 4 {
		sb = append(sb, fmt.Sprintf("  %8.2f   %.3f\n", diss[i]*1e3, op[i]*1e3)...)
	}
	printSeries("fig8c", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dev.PowerCurve(40, currents); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9aAvgTemp regenerates Fig. 9-a: mean ONI temperature vs
// P_VCSEL for four chip powers (paper: ~+3.3 °C per +6.25 W chip, ~+11 °C
// per +6 mW laser).
func BenchmarkFig9aAvgTemp(b *testing.B) {
	m := benchMethodology(b)
	ex, err := m.Explorer(nil)
	if err != nil {
		b.Fatal(err)
	}
	chips := []float64{12.5, 18.75, 25, 31.25}
	lasers := []float64{0, 1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3}
	table, err := ex.SweepAvgTemp(chips, lasers)
	if err != nil {
		b.Fatal(err)
	}
	var sb []byte
	sb = append(sb, "\nFig. 9-a — mean ONI temperature (°C) vs P_VCSEL × P_chip\n  Pchip\\Pv(mW):      0      1      2      3      4      5      6\n"...)
	for i, row := range table {
		sb = append(sb, fmt.Sprintf("  %6.2f W    ", chips[i])...)
		for _, pt := range row {
			sb = append(sb, fmt.Sprintf(" %6.2f", pt.MeanONITemp)...)
		}
		sb = append(sb, '\n')
	}
	dChip := table[3][0].MeanONITemp - table[0][0].MeanONITemp
	dLaser := table[2][6].MeanONITemp - table[2][0].MeanONITemp
	sb = append(sb, fmt.Sprintf("  chip-power response: %+.1f °C / 18.75 W (paper ~ +9.9)\n", dChip)...)
	sb = append(sb, fmt.Sprintf("  laser-power response: %+.1f °C / 6 mW   (paper ~ +11)\n", dLaser)...)
	printSeries("fig9a", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.SweepAvgTemp(chips, lasers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9bGradient regenerates Fig. 9-b: intra-ONI gradient vs
// P_heater for four laser powers; the minimum of every curve sits near
// P_heater = 0.3 × P_VCSEL.
func BenchmarkFig9bGradient(b *testing.B) {
	m := benchMethodology(b)
	ex, err := m.Explorer(nil)
	if err != nil {
		b.Fatal(err)
	}
	lasers := []float64{1e-3, 2e-3, 4e-3, 6e-3}
	heaters := make([]float64, 21)
	for i := range heaters {
		heaters[i] = float64(i) * 0.2e-3
	}
	table, err := ex.SweepGradient(25, lasers, heaters)
	if err != nil {
		b.Fatal(err)
	}
	var sb []byte
	sb = append(sb, "\nFig. 9-b — mean intra-ONI gradient (°C) vs P_heater; V-minimum per row\n"...)
	for i, row := range table {
		minIdx, err := dse.GradientCurveMinimum(row)
		if err != nil {
			b.Fatal(err)
		}
		sb = append(sb, fmt.Sprintf("  Pv=%3.0f mW: grad(0)=%5.2f  min=%5.2f at Ph=%.2f mW  ratio=%.2f (paper 0.30)\n",
			lasers[i]*1e3, row[0].MeanGradient, row[minIdx].MeanGradient,
			row[minIdx].PHeater*1e3, row[minIdx].PHeater/lasers[i])...)
	}
	printSeries("fig9b", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.SweepGradient(25, lasers, heaters); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10HeaterComparison regenerates Fig. 10: average and gradient
// temperatures with and without the MR heater at P_heater = 0.3 P_VCSEL.
func BenchmarkFig10HeaterComparison(b *testing.B) {
	m := benchMethodology(b)
	ex, err := m.Explorer(nil)
	if err != nil {
		b.Fatal(err)
	}
	lasers := []float64{1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3}
	rows, err := ex.HeaterComparison(25, lasers, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	var sb []byte
	sb = append(sb, "\nFig. 10 — heater off vs on (ratio 0.3); paper: grad 1.0→0.3 °C @1 mW, 5.8→1.3 °C @6 mW, avg cost ≤0.8 °C\n  Pv(mW)  grad w/o  grad w/   avg w/o   avg w/\n"...)
	for _, r := range rows {
		sb = append(sb, fmt.Sprintf("  %5.0f   %7.2f   %6.2f   %7.2f   %6.2f\n",
			r.PVCSEL*1e3, r.GradientWithout, r.GradientWith, r.AvgTempWithout, r.AvgTempWith)...)
	}
	printSeries("fig10", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.HeaterComparison(25, lasers, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12SNR regenerates Fig. 12: worst-case SNR plus signal and
// crosstalk powers for the three placements under uniform, diagonal and
// random activities (paper SNRs — U: 38/25/13, D: 19/13/10, R: 20/17/12 dB).
func BenchmarkFig12SNR(b *testing.B) {
	m := benchMethodology(b)
	acts := []activity.Scenario{
		activity.Uniform{},
		activity.Diagonal{},
		activity.Random{Seed: 7, Min: 0.5, Max: 1.5},
	}
	cases := []ornoc.CaseStudy{ornoc.Case18mm, ornoc.Case32mm, ornoc.Case47mm}
	run := func(act activity.Scenario, cs ornoc.CaseStudy) (*core.SNRResult, error) {
		return m.SNRAnalysis(core.SNRScenario{
			Case: cs, Activity: act, ChipPower: 24,
			PVCSEL: 3.6e-3, PHeater: 1.08e-3, Pattern: core.Neighbour,
		})
	}
	var sb []byte
	sb = append(sb, "\nFig. 12 — worst-case SNR per placement and activity (Pv=3.6 mW, Ph=1.08 mW)\n"...)
	for _, act := range acts {
		sb = append(sb, fmt.Sprintf("  %-8s:", act.Name())...)
		for _, cs := range cases {
			r, err := run(act, cs)
			if err != nil {
				b.Fatal(err)
			}
			sb = append(sb, fmt.Sprintf("  %5.1fmm %6.1f dB (sig %.3f mW, xt %.4f mW, ΔT %.2f °C)",
				r.RingLengthM*1e3, r.Report.WorstSNRdB,
				r.Report.MeanSignalW*1e3, r.Report.MeanCrosstalkW*1e3,
				r.NodeTempMax-r.NodeTempMin)...)
		}
		sb = append(sb, '\n')
	}
	sb = append(sb, "  paper   :  uniform 38/25/13 dB, diagonal 19/13/10 dB, random 20/17/12 dB\n"...)
	printSeries("fig12", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(acts[1], ornoc.Case47mm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossbarLosses regenerates the related-work loss comparison
// (ref [20]): ORNoC vs Matrix, λ-router and Snake at 4×4 scale (paper:
// ~42.5 % worst-case and ~38 % average reduction).
func BenchmarkCrossbarLosses(b *testing.B) {
	budget := waveguide.DefaultLossBudget()
	cmp, err := xbar.Compare(16, 2e-3, budget)
	if err != nil {
		b.Fatal(err)
	}
	var sb []byte
	sb = append(sb, "\nRef [20] — insertion loss at 16 interfaces (4×4)\n  topology        worst(dB)  avg(dB)\n"...)
	for _, topo := range xbar.AllTopologies() {
		a := cmp.Results[topo]
		sb = append(sb, fmt.Sprintf("  %-14s  %8.2f  %7.2f\n", topo, a.WorstLossDB, a.AverageLossDB)...)
	}
	sb = append(sb, fmt.Sprintf("  ORNoC saving: worst %.1f%% (paper 42.5%%), average %.1f%% (paper 38%%)\n",
		cmp.WorstSaving*100, cmp.AverageSaving*100)...)
	printSeries("xbar", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xbar.Compare(16, 2e-3, budget); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (always coarse resolution) ---

func coarseModel(b *testing.B, style oni.Style) *thermal.Model {
	b.Helper()
	spec, err := thermal.PaperSpec()
	if err != nil {
		b.Fatal(err)
	}
	spec.Res = thermal.CoarseResolution()
	spec.SolverTol = 1e-7
	spec.ONIStyle = style
	m, err := thermal.NewModel(spec)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationChessboard compares the paper's chessboard ONI layout
// against a clustered TX/RX layout — the design choice motivated in
// Section III-B.
func BenchmarkAblationChessboard(b *testing.B) {
	p := thermal.Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3}
	chess := coarseModel(b, oni.Chessboard)
	clustered := coarseModel(b, oni.Clustered)
	rc, err := chess.Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	rl, err := clustered.Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	meanGrad := func(r *thermal.Result) float64 {
		var s float64
		for _, o := range r.ONIs {
			s += o.Gradient
		}
		return s / float64(len(r.ONIs))
	}
	printSeries("ablation-chessboard", fmt.Sprintf(`
Ablation — ONI device placement at Pv=4 mW (coarse mesh)
  chessboard: mean gradient %.2f °C, max %.2f °C
  clustered : mean gradient %.2f °C, max %.2f °C
`, meanGrad(rc), rc.MaxONIGradient(), meanGrad(rl), rl.MaxONIGradient()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chess.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSuperposition verifies and times the superposition
// shortcut against a direct assembled solve.
func BenchmarkAblationSuperposition(b *testing.B) {
	m := coarseModel(b, oni.Chessboard)
	basis, err := m.BuildBasis(nil)
	if err != nil {
		b.Fatal(err)
	}
	p := thermal.Powers{Chip: 25, VCSEL: 3e-3, Driver: 3e-3, Heater: 0.9e-3}
	direct, err := m.Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	super, err := basis.Evaluate(p)
	if err != nil {
		b.Fatal(err)
	}
	printSeries("ablation-superposition", fmt.Sprintf(`
Ablation — superposition vs direct solve (coarse mesh)
  direct mean ONI: %.3f °C, basis mean ONI: %.3f °C (|Δ| = %.2e °C)
`, direct.MeanONITemp(), super.MeanONITemp(),
		math.Abs(direct.MeanONITemp()-super.MeanONITemp())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := basis.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHeaterRatio probes the sensitivity of the 0.3 optimum
// to the heater footprint assumption.
func BenchmarkAblationHeaterRatio(b *testing.B) {
	var sb []byte
	sb = append(sb, "\nAblation — optimal heater ratio vs heater footprint scale (coarse mesh)\n"...)
	var explorers []*dse.Explorer
	for _, scale := range []float64{1.5, 2.5, 3.5} {
		spec, err := thermal.PaperSpec()
		if err != nil {
			b.Fatal(err)
		}
		spec.Res = thermal.CoarseResolution()
		spec.SolverTol = 1e-7
		spec.HeaterFootprintScale = scale
		m, err := thermal.NewModel(spec)
		if err != nil {
			b.Fatal(err)
		}
		basis, err := m.BuildBasis(nil)
		if err != nil {
			b.Fatal(err)
		}
		ex, err := dse.NewExplorer(basis)
		if err != nil {
			b.Fatal(err)
		}
		explorers = append(explorers, ex)
		opt, err := ex.OptimalHeater(25, 4e-3, 4e-3)
		if err != nil {
			b.Fatal(err)
		}
		sb = append(sb, fmt.Sprintf("  footprint ×%.1f: optimal ratio %.2f (gradient %.2f → %.2f °C)\n",
			scale, opt.Ratio, opt.GradientNoHeater, opt.MeanGradient)...)
	}
	printSeries("ablation-ratio", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explorers[i%len(explorers)].OptimalHeater(25, 4e-3, 4e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMeshResolution quantifies the mesh-dependence of the
// headline quantities (gradient, mean ONI temperature).
func BenchmarkAblationMeshResolution(b *testing.B) {
	p := thermal.Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3}
	var sb []byte
	sb = append(sb, "\nAblation — mesh resolution (Pv=4 mW, no heater)\n"...)
	resolutions := []struct {
		name string
		res  thermal.Resolution
	}{
		{"coarse-20um", thermal.CoarseResolution()},
		{"fast-10um", thermal.FastResolution()},
	}
	var solveModel *thermal.Model
	for _, rc := range resolutions {
		spec, err := thermal.PaperSpec()
		if err != nil {
			b.Fatal(err)
		}
		spec.Res = rc.res
		spec.SolverTol = 1e-7
		m, err := thermal.NewModel(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, o := range res.ONIs {
			mean += o.Gradient
		}
		mean /= float64(len(res.ONIs))
		sb = append(sb, fmt.Sprintf("  %-12s %8d cells: mean ONI %.2f °C, mean gradient %.2f °C\n",
			rc.name, m.NumCells(), res.MeanONITemp(), mean)...)
		if rc.name == "coarse-20um" {
			solveModel = m
		}
	}
	printSeries("ablation-mesh", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solveModel.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSNREvaluation times the analytical SNR model alone on the
// largest ring (useful for scaling studies).
func BenchmarkSNREvaluation(b *testing.B) {
	m := benchMethodology(b)
	ring, err := ornoc.BuildCase(m.Spec().Floorplan, ornoc.Case47mm)
	if err != nil {
		b.Fatal(err)
	}
	comms := ornoc.NeighbourPattern(ring.N())
	if _, err := ring.AssignChannels(comms); err != nil {
		b.Fatal(err)
	}
	temps := make([]float64, ring.N())
	for i := range temps {
		temps[i] = 52 + float64(i%4)
	}
	cfg := snr.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snr.Evaluate(cfg, snr.Input{Ring: ring, Comms: comms, NodeTemps: temps}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalDirectSolve times one full assembled solve at the bench
// resolution — the unit of cost the superposition basis amortises.
func BenchmarkThermalDirectSolve(b *testing.B) {
	m := benchMethodology(b)
	p := thermal.Powers{Chip: 25, VCSEL: 3.6e-3, Driver: 3.6e-3, Heater: 1.08e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Model().Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBasisEvaluate times one superposition evaluation (the fast
// path all sweeps use).
func BenchmarkBasisEvaluate(b *testing.B) {
	m := benchMethodology(b)
	basis, err := m.BasisFor(nil)
	if err != nil {
		b.Fatal(err)
	}
	p := thermal.Powers{Chip: 25, VCSEL: 3.6e-3, Driver: 3.6e-3, Heater: 1.08e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := basis.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverBackends races every registered sparse backend on the
// bench model's FVM system at the paper's operating point: same matrix,
// same RHS, different preconditioner. SSOR-CG trades a triangular sweep
// per iteration for a ~3x lower iteration count than Jacobi-CG; MG-CG's
// V-cycle makes the count mesh-independent (compare the iters/solve
// metric across VCSELNOC_BENCH_RES=preview|fast|paper runs: mg-cg stays
// flat while the others grow with resolution).
func BenchmarkSolverBackends(b *testing.B) {
	m := benchMethodology(b).Model()
	power, err := m.PowerVector(thermal.Powers{Chip: 25, VCSEL: 3.6e-3, Driver: 3.6e-3, Heater: 1.08e-3})
	if err != nil {
		b.Fatal(err)
	}
	for _, backend := range sparse.Backends() {
		b.Run(backend, func(b *testing.B) {
			opts := benchMGKnobs(fvm.SolveOptions{Tolerance: 1e-8, Solver: backend})
			var iters int
			before := mg.ReadPhaseStats()
			for i := 0; i < b.N; i++ {
				sol, err := m.System().SolveSteady(power, opts)
				if err != nil {
					b.Fatal(err)
				}
				iters = sol.Stats.Iterations
			}
			b.ReportMetric(float64(iters), "iters/solve")
			// For mg-cg, break the solve down into V-cycle phase time
			// fractions (fraction of total benchmark wall-clock spent
			// smoothing, restricting, prolongating and coarse-solving) —
			// machine-dependent, so benchguard reports them without
			// gating.
			if backend == sparse.BackendMGCG && b.Elapsed() > 0 {
				ph := mg.ReadPhaseStats().Sub(before)
				total := b.Elapsed().Seconds()
				b.ReportMetric(ph.Smooth.Seconds()/total, "smoothfrac")
				b.ReportMetric(ph.Restrict.Seconds()/total, "restrictfrac")
				b.ReportMetric(ph.Prolong.Seconds()/total, "prolongfrac")
				b.ReportMetric(ph.Coarse.Seconds()/total, "coarsefrac")
			}
		})
	}
}

// BenchmarkCoarseSolve isolates the coarsest-level direct solve the
// V-cycle leans on, splitting the one-off cost from the recurring one:
// "factor" is the sparse-Cholesky setup (symbolic analysis plus numeric
// factorisation under the fill-reducing nested-dissection ordering) paid
// once per hierarchy, "solve" the permuted triangular solve every
// V-cycle buys with it. Read them against the coarsefrac metric of
// BenchmarkSolverBackends/mg-cg: factor amortises across the whole
// basis build, solve is the term that replaced the coarse-grid PCG
// iterations.
func BenchmarkCoarseSolve(b *testing.B) {
	m := benchMethodology(b).Model()
	h, err := m.System().Hierarchy()
	if err != nil {
		b.Fatal(err)
	}
	a := h.CoarseOperator()
	perm := h.CoarseOrdering()
	b.Run("factor", func(b *testing.B) {
		var nnz int
		for i := 0; i < b.N; i++ {
			c, err := sparse.NewSparseCholesky(a, perm, 0)
			if err != nil {
				b.Fatal(err)
			}
			nnz = c.Nnz()
		}
		b.ReportMetric(float64(a.N()), "cells")
		b.ReportMetric(float64(nnz), "entries")
	})
	b.Run("solve", func(b *testing.B) {
		c, err := sparse.NewSparseCholesky(a, perm, 0)
		if err != nil {
			b.Fatal(err)
		}
		rhs := make([]float64, a.N())
		for i := range rhs {
			rhs[i] = 1 + float64(i%7)
		}
		x := make([]float64, a.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(x, rhs)
			c.SolveInPlace(x)
		}
	})
}

// BenchmarkBuildBasis contrasts the seed's basis-construction path (a
// fresh operator assembly inside every one of the four unit solves)
// against the refactored one (a single cached assembly, the four RHS
// batched across the worker pool with reused solver workspaces).
func BenchmarkBuildBasis(b *testing.B) {
	m := benchMethodology(b).Model()
	units := []thermal.Powers{
		{Chip: 1},
		{VCSEL: 0.5e-3},
		{Driver: 0.5e-3},
		{Heater: 0.5e-3},
	}
	b.Run("seed-reassemble", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range units {
				prob, err := m.Problem(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fvm.SolveSteady(prob, fvm.SolveOptions{Tolerance: 1e-8}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("cached-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.BuildBasis(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	batch := make([][]float64, len(units))
	for i, p := range units {
		power, err := m.PowerVector(p)
		if err != nil {
			b.Fatal(err)
		}
		batch[i] = power
	}
	b.Run("cached-batch-ssor", func(b *testing.B) {
		opts := fvm.SolveOptions{Tolerance: 1e-8, Solver: "ssor-cg"}
		for i := 0; i < b.N; i++ {
			if _, err := m.System().SolveSteadyBatch(batch, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The headline path: the four unit right-hand sides advance as ONE
	// block-Krylov solve whose per-column multigrid V-cycles share the
	// system's cached hierarchy and run concurrently. At the bench (fast)
	// resolution this beats cached-batch-ssor by ~3x wall-clock.
	b.Run("cached-block-mg", func(b *testing.B) {
		opts := fvm.SolveOptions{Tolerance: 1e-8, Solver: "mg-cg"}
		var iters int
		for i := 0; i < b.N; i++ {
			sols, err := m.System().SolveSteadyBlock(batch, opts)
			if err != nil {
				b.Fatal(err)
			}
			iters = sols[0].Stats.Iterations
		}
		b.ReportMetric(float64(iters), "iters/solve")
	})
}

// BenchmarkTransientSteps times one implicit-Euler transient step per
// iteration against the cached per-dt transient operator, for the cheap
// Jacobi-CG backend and for mg-cg's shifted V-cycle (derived from the
// system's steady hierarchy — only the Galerkin diagonals rebuilt for the
// C/dt bump). The iters/step metric is the machine-independent signal:
// mg-cg stays in the steady solves' low single digits at every
// resolution while jacobi-cg grows with the mesh — the reason transient
// runs no longer fall back off mg-cg at fast/paper resolutions.
func BenchmarkTransientSteps(b *testing.B) {
	m := benchMethodology(b).Model()
	power, err := m.PowerVector(thermal.Powers{Chip: 25, VCSEL: 3.6e-3, Driver: 3.6e-3, Heater: 1.08e-3})
	if err != nil {
		b.Fatal(err)
	}
	for _, backend := range []string{"jacobi-cg", "mg-cg"} {
		b.Run(backend, func(b *testing.B) {
			// Stepper construction (including the one-off shifted-
			// hierarchy derivation) stays outside the timer: the steady
			// state being measured is the per-step cost of a long run.
			st, err := m.System().NewTransientStepper(power, fvm.TransientOptions{
				TimeStep: 1e-3, InitialUniform: 25, Tolerance: 1e-8, Solver: backend,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				stats, err := st.Step()
				if err != nil {
					b.Fatal(err)
				}
				iters = stats.Iterations
			}
			b.ReportMetric(float64(iters), "iters/step")
		})
	}
}

// BenchmarkVCSELOperate times the laser self-heating fixed point.
func BenchmarkVCSELOperate(b *testing.B) {
	dev, err := vcsel.New(vcsel.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Operate(4e-3, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBConversions times the hot-path dB helpers.
func BenchmarkDBConversions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = units.FromDB(units.DB(0.5))
	}
}

// BenchmarkServeGradientQueries measures the warm thermal-analysis
// service's query throughput: concurrent /v1/gradient requests against a
// prebuilt basis, with the micro-batcher on (concurrent requests within
// the window evaluate as one worker-pool fan-out) and off (each request
// evaluates inline). Every request uses a fresh operating point so the
// LRU never short-circuits the evaluation; ns/op is the per-query cost
// under concurrency — invert for queries/sec.
func BenchmarkServeGradientQueries(b *testing.B) {
	spec, err := thermal.PaperSpec()
	if err != nil {
		b.Fatal(err)
	}
	spec.Res = benchResolution()
	for _, mode := range []struct {
		name   string
		window time.Duration
	}{
		{"batched", serve.DefaultBatchWindow},
		{"unbatched", -1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv, err := serve.New(serve.Config{
				Specs:       map[string]thermal.Spec{serve.DefaultSpec: spec},
				BatchWindow: mode.window,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(srv.Close)
			if err := srv.Warm(serve.DefaultSpec); err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					// A fresh laser power per query defeats the LRU
					// while staying on the same warm basis.
					pv := 1e-3 + float64(seq.Add(1))*1e-9
					body := fmt.Sprintf(`{"chip": 25, "pvcsel": %g, "pheater": 1e-3}`, pv)
					req := httptest.NewRequest(http.MethodPost, "/v1/gradient", strings.NewReader(body))
					w := httptest.NewRecorder()
					srv.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
					}
				}
			})
		})
	}
}

// BenchmarkServeTracing measures the request-tracing overhead on the hot
// query path: identical unbatched /v1/gradient traffic with span
// recording on (the default) and off (DisableTracing). The delta between
// the modes is the per-request cost of trace-id minting, span
// timestamping and ring publication — expected well under 2% of ns/op,
// and held there by benchguard's ratio gate on both entries.
func BenchmarkServeTracing(b *testing.B) {
	spec, err := thermal.PaperSpec()
	if err != nil {
		b.Fatal(err)
	}
	spec.Res = benchResolution()
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"on", false},
		{"off", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv, err := serve.New(serve.Config{
				Specs:          map[string]thermal.Spec{serve.DefaultSpec: spec},
				BatchWindow:    -1,
				DisableTracing: mode.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(srv.Close)
			if err := srv.Warm(serve.DefaultSpec); err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					pv := 1e-3 + float64(seq.Add(1))*1e-9
					body := fmt.Sprintf(`{"chip": 25, "pvcsel": %g, "pheater": 1e-3}`, pv)
					req := httptest.NewRequest(http.MethodPost, "/v1/gradient", strings.NewReader(body))
					w := httptest.NewRecorder()
					srv.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
					}
				}
			})
		})
	}
}
