// Package vcselnoc is a thermal-aware design toolkit for on-chip optical
// interconnects built from CMOS-compatible VCSELs, reproducing the
// methodology of Li et al., "Thermal Aware Design Method for VCSEL-based
// On-Chip Optical Interconnect" (DATE 2015).
//
// The toolkit couples three engines:
//
//   - a steady-state (and transient) finite-volume thermal simulator of a
//     3D-stacked MPSoC package, meshed at device resolution inside the
//     Optical Network Interfaces (ONIs);
//   - electro-opto-thermal device models: VCSEL (threshold/slope/thermal
//     rollover), microring resonator (Lorentzian filter, 0.1 nm/°C drift,
//     resistive heater), photodetector and waveguide loss budget;
//   - the analytical worst-case SNR model for ORNoC rings under thermal
//     gradients, plus insertion-loss baselines (Matrix, λ-router, Snake).
//
// The central workflow mirrors the paper's Fig. 3:
//
//	m, err := vcselnoc.New()                       // SCC case study
//	opt, err := m.OptimalHeaterRatio(nil, 25, 4e-3) // ≈ 0.3 × P_VCSEL
//	res, err := m.SNRAnalysis(vcselnoc.SNRScenario{ ... })
//
// Every building block is exported here by alias so downstream code can
// depend on a single import path; the implementation lives in the
// internal packages (internal/thermal, internal/snr, ...).
package vcselnoc

import (
	"context"
	"io"
	"net/http"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/fvm"
	"vcselnoc/internal/geom"
	"vcselnoc/internal/mesh"
	"vcselnoc/internal/mrr"
	"vcselnoc/internal/oni"
	"vcselnoc/internal/ornoc"
	"vcselnoc/internal/photodiode"
	"vcselnoc/internal/scc"
	"vcselnoc/internal/serve"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/stack"
	"vcselnoc/internal/thermal"
	"vcselnoc/internal/vcsel"
	"vcselnoc/internal/waveguide"
	"vcselnoc/internal/xbar"
)

// Methodology is the paper's design flow: thermal analysis + design-space
// exploration + SNR analysis. Build one with New or NewWithSpec.
type Methodology = core.Methodology

// SNRScenario describes one Fig. 12-style evaluation (placement case,
// activity, laser/heater powers, communication pattern).
type SNRScenario = core.SNRScenario

// SNRResult bundles the thermal and signal outcomes of a scenario.
type SNRResult = core.SNRResult

// DesignEvaluation is the complete verdict for one operating point.
type DesignEvaluation = core.DesignEvaluation

// CommPattern selects the communication set on a ring.
type CommPattern = core.CommPattern

// Communication patterns.
const (
	Neighbour = core.Neighbour
	Paired    = core.Paired
)

// New builds the methodology at the paper's operating point.
func New() (*Methodology, error) { return core.New() }

// NewWithSpec builds the methodology from an explicit specification.
func NewWithSpec(spec ThermalSpec, cfg SNRConfig) (*Methodology, error) {
	return core.NewWithSpec(spec, cfg)
}

// Options tunes the paper's operating point without spelling out a full
// specification: mesh density, sparse solver backend and parallelism.
type Options struct {
	// Res selects the mesh density; the zero value keeps the FastResolution
	// default of PaperSpec.
	Res Resolution
	// Solver selects the sparse backend by name (SolverJacobiCG,
	// SolverSSORCG, SolverMGCG); empty auto-selects per resolution:
	// mg-cg at fast/paper, jacobi-cg at preview/coarse.
	Solver string
	// Workers caps the goroutines used by parallel solves and design-space
	// sweeps; 0 means GOMAXPROCS.
	Workers int
	// SolverTol overrides the 1e-8 relative solver tolerance when > 0.
	SolverTol float64
}

// NewWithOptions builds the methodology at the paper's operating point
// with solver and parallelism overrides.
func NewWithOptions(o Options) (*Methodology, error) {
	spec, err := thermal.PaperSpec()
	if err != nil {
		return nil, err
	}
	if o.Res != (Resolution{}) {
		spec.Res = o.Res
	}
	spec.Solver = o.Solver
	spec.Workers = o.Workers
	if o.SolverTol > 0 {
		spec.SolverTol = o.SolverTol
	}
	return core.NewWithSpec(spec, snr.DefaultConfig())
}

// Thermal simulation layer.
type (
	// ThermalSpec is the system specification (floorplan, stack, heat
	// sink, mesh resolution).
	ThermalSpec = thermal.Spec
	// ThermalModel is an assembled mesh + materials + power stencils.
	ThermalModel = thermal.Model
	// ThermalResult is a solved operating point with per-ONI reports.
	ThermalResult = thermal.Result
	// ThermalBasis is a superposition basis for fast power sweeps.
	ThermalBasis = thermal.Basis
	// Powers are the independent power knobs of an operating point.
	Powers = thermal.Powers
	// Resolution controls mesh density.
	Resolution = thermal.Resolution
	// ONIReport summarises one ONI's thermal state.
	ONIReport = thermal.ONIReport
)

// PaperSpec returns the SCC case-study specification.
func PaperSpec() (ThermalSpec, error) { return thermal.PaperSpec() }

// NewThermalModel assembles a thermal model from a specification.
func NewThermalModel(spec ThermalSpec) (*ThermalModel, error) { return thermal.NewModel(spec) }

// Mesh resolutions.
var (
	// PaperResolution is the paper's 5 µm ONI meshing (slow, accurate).
	PaperResolution = thermal.PaperResolution
	// FastResolution is the 10 µm default.
	FastResolution = thermal.FastResolution
	// CoarseResolution is the 20 µm test/preview setting.
	CoarseResolution = thermal.CoarseResolution
)

// Design-space exploration layer.
type (
	// Explorer runs laser/heater power sweeps over a thermal basis.
	Explorer = dse.Explorer
	// HeaterOptimum is the result of the optimal-heater search.
	HeaterOptimum = dse.HeaterOptimum
	// Feasibility reports the 1 °C gradient constraint at a point.
	Feasibility = dse.Feasibility
	// AvgTempPoint is one Fig. 9-a sweep cell.
	AvgTempPoint = dse.AvgTempPoint
	// GradientPoint is one Fig. 9-b sweep cell.
	GradientPoint = dse.GradientPoint
	// ComparisonRow is one Fig. 10 row.
	ComparisonRow = dse.ComparisonRow
)

// GradientLimit is the paper's 1 °C intra-ONI gradient constraint.
const GradientLimit = dse.GradientLimit

// NewExplorer wraps a thermal basis for design-space exploration.
func NewExplorer(b *ThermalBasis) (*Explorer, error) { return dse.NewExplorer(b) }

// Device models.
type (
	// VCSELParams parameterise the laser model.
	VCSELParams = vcsel.Params
	// VCSEL is the electro-opto-thermal laser model.
	VCSEL = vcsel.Device
	// VCSELOperatingPoint is a self-consistent laser state.
	VCSELOperatingPoint = vcsel.OperatingPoint
	// MRParams parameterise the microring model.
	MRParams = mrr.Params
	// MR is a microring resonator.
	MR = mrr.Ring
	// DetectorParams parameterise the photodetector.
	DetectorParams = photodiode.Params
	// Detector is a photodetector.
	Detector = photodiode.Detector
	// LossBudget prices waveguide elements in dB.
	LossBudget = waveguide.LossBudget
)

// Device constructors and defaults.
func NewVCSEL(p VCSELParams) (*VCSEL, error)          { return vcsel.New(p) }
func DefaultVCSELParams() VCSELParams                 { return vcsel.DefaultParams() }
func NewMR(p MRParams) (*MR, error)                   { return mrr.New(p) }
func DefaultMRParams() MRParams                       { return mrr.DefaultParams() }
func NewDetector(p DetectorParams) (*Detector, error) { return photodiode.New(p) }
func DefaultDetectorParams() DetectorParams           { return photodiode.DefaultParams() }
func DefaultLossBudget() LossBudget                   { return waveguide.DefaultLossBudget() }

// Network layer.
type (
	// Ring is an ORNoC ring of ONIs.
	Ring = ornoc.Ring
	// RingNode is one ONI on a ring.
	RingNode = ornoc.Node
	// RingCommunication is a point-to-point channel on a ring.
	RingCommunication = ornoc.Communication
	// CaseStudy selects one of the paper's three ONI placements.
	CaseStudy = ornoc.CaseStudy
	// SNRConfig gathers the SNR technology parameters.
	SNRConfig = snr.Config
	// SNRReport is an evaluated communication set.
	SNRReport = snr.Report
	// CommReport is one communication's outcome.
	CommReport = snr.CommReport
)

// The paper's three ONI placements (Fig. 11).
const (
	Case18mm = ornoc.Case18mm
	Case32mm = ornoc.Case32mm
	Case47mm = ornoc.Case47mm
)

// NewRing builds a ring from ordered nodes.
func NewRing(nodes []RingNode) (*Ring, error) { return ornoc.NewRing(nodes) }

// BuildCase constructs one of the paper's placement cases.
func BuildCase(fp *Floorplan, c CaseStudy) (*Ring, error) { return ornoc.BuildCase(fp, c) }

// DefaultSNRConfig returns the paper's technology point (Table 1).
func DefaultSNRConfig() SNRConfig { return snr.DefaultConfig() }

// EvaluateSNR runs the analytical SNR model directly.
func EvaluateSNR(cfg SNRConfig, in snr.Input) (*SNRReport, error) { return snr.Evaluate(cfg, in) }

// SNRInput is the direct input to the SNR model.
type SNRInput = snr.Input

// Crossbar baselines.
type (
	// XbarTopology identifies a crossbar architecture.
	XbarTopology = xbar.Topology
	// XbarDesign couples topology, scale and loss budget.
	XbarDesign = xbar.Design
	// XbarAnalysis holds a design's loss statistics.
	XbarAnalysis = xbar.Analysis
	// XbarComparison is the ORNoC-vs-crossbars table.
	XbarComparison = xbar.Comparison
)

// Crossbar topologies.
const (
	TopoORNoC        = xbar.ORNoC
	TopoMatrix       = xbar.Matrix
	TopoLambdaRouter = xbar.LambdaRouter
	TopoSnake        = xbar.Snake
)

// AnalyzeXbar evaluates one crossbar design.
func AnalyzeXbar(d XbarDesign) (*XbarAnalysis, error) { return xbar.Analyze(d) }

// CompareXbars analyses every topology at one scale.
func CompareXbars(n int, pitch float64, b LossBudget) (*XbarComparison, error) {
	return xbar.Compare(n, pitch, b)
}

// Architecture layer.
type (
	// Floorplan is the SCC die layout.
	Floorplan = scc.Floorplan
	// PowerBlock is a rectangular heat source.
	PowerBlock = scc.PowerBlock
	// PackageStack is the vertical layer pile.
	PackageStack = stack.Stack
	// HeatSink is the finned air-cooled sink model.
	HeatSink = stack.HeatSink
	// ONILayout is a placed optical network interface.
	ONILayout = oni.Layout
	// ONIStyle selects chessboard or clustered placement.
	ONIStyle = oni.Style
)

// ONI placement styles.
const (
	Chessboard = oni.Chessboard
	Clustered  = oni.Clustered
)

// NewSCCFloorplan builds the 24-tile SCC floorplan.
func NewSCCFloorplan() (*Floorplan, error) { return scc.New() }

// DefaultPackageStack returns the paper's Fig. 7 layer pile.
func DefaultPackageStack() (*PackageStack, error) { return stack.DefaultSCC() }

// DefaultHeatSink returns the 125 W-class forced-air sink.
func DefaultHeatSink() HeatSink { return stack.DefaultHeatSink() }

// GenerateONI places ONI devices inside a site rectangle.
func GenerateONI(site ONISite, style ONIStyle) (*ONILayout, error) { return oni.Generate(site, style) }

// ONISite is the footprint rectangle of one ONI (die coordinates, metres).
type ONISite = geom.Rect

// NewONISite builds a w×h site centred at (cx, cy), all in metres.
func NewONISite(cx, cy, w, h float64) ONISite { return geom.CenteredRect(cx, cy, w, h) }

// Activity scenarios.
type (
	// ActivityScenario produces per-tile activity weights.
	ActivityScenario = activity.Scenario
	// UniformActivity loads all tiles equally.
	UniformActivity = activity.Uniform
	// DiagonalActivity is the paper's hot-diagonal pattern.
	DiagonalActivity = activity.Diagonal
	// RandomActivity is a seeded random pattern.
	RandomActivity = activity.Random
	// HotspotActivity concentrates load on one tile.
	HotspotActivity = activity.Hotspot
	// CheckerboardActivity alternates hot and cold tiles.
	CheckerboardActivity = activity.Checkerboard
)

// ActivityByName resolves a CLI-style scenario name.
func ActivityByName(name string, seed int64) (ActivityScenario, error) {
	return activity.ByName(name, seed)
}

// Serving layer: the warm thermal-analysis service behind cmd/vcseld and
// the scatter/gather client behind `dse -shards`.
type (
	// Server is the warm HTTP service: long-lived models and bases,
	// micro-batched superposition queries, an LRU over canonicalised
	// scenarios, and single-flight basis builds. It implements
	// http.Handler.
	Server = serve.Server
	// ServeConfig registers the specs a Server owns warm state for and
	// tunes its batching/caching.
	ServeConfig = serve.Config
	// ServeScenario is the wire form of one operating point.
	ServeScenario = serve.Scenario
	// ShardClient scatters design-space sweep grids across a vcseld
	// fleet and gathers rows back deterministically, retrying failed
	// chunks locally.
	ShardClient = serve.ShardClient
)

// DefaultServeSpec is the registry name an empty scenario spec selects.
const DefaultServeSpec = serve.DefaultSpec

// NewServer builds the warm thermal-analysis service.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// NewShardClient parses a comma-separated worker list into a sharded
// sweep client; fallback (optional) builds the local explorer used to
// recompute chunks whose worker failed.
func NewShardClient(shards string, sc ServeScenario, fallback func() (*Explorer, error)) (*ShardClient, error) {
	return serve.NewShardClient(shards, sc, fallback)
}

// RunServer serves handler on addr until ctx is cancelled, then drains
// in-flight requests gracefully (see serve.ListenAndRun).
func RunServer(ctx context.Context, addr string, handler http.Handler) error {
	return serve.ListenAndRun(ctx, addr, handler, 0, nil)
}

// Low-level solver access (for users building their own structures).
type (
	// FVMProblem is a raw finite-volume conduction problem.
	FVMProblem = fvm.Problem
	// FVMSystem is an assembled conduction operator, reusable across every
	// solve that shares geometry and boundaries (steady, batch, transient).
	FVMSystem = fvm.System
	// FVMSolution is a solved temperature field.
	FVMSolution = fvm.Solution
	// FVMBoundary describes one domain face's condition.
	FVMBoundary = fvm.Boundary
	// FVMSolveOptions configures a steady solve (tolerance, backend,
	// workers).
	FVMSolveOptions = fvm.SolveOptions
	// FVMTransientOptions configures a raw transient run.
	FVMTransientOptions = fvm.TransientOptions
	// SparseSolver is a pluggable SPD linear solver backend.
	SparseSolver = sparse.Solver
	// SparseSolverConfig selects and parameterises a solver backend.
	SparseSolverConfig = sparse.Config
	// SparseResult reports how an iterative solve went.
	SparseResult = sparse.Result
	// SparseWorkspace is reusable solver scratch space for allocation-free
	// repeated solves.
	SparseWorkspace = sparse.Workspace
	// SparseCSR is a compressed-sparse-row matrix.
	SparseCSR = sparse.CSR
	// MeshGrid is a structured non-uniform grid.
	MeshGrid = mesh.Grid
	// MeshAxisBuilder accumulates breakpoints/refinements for one axis.
	MeshAxisBuilder = mesh.AxisBuilder
	// TransientSpec configures a system-level transient simulation
	// (observer, checkpoint and resume knobs included).
	TransientSpec = thermal.TransientSpec
	// TransientRun is an in-flight resumable system-level transient
	// simulation: step-at-a-time API over the cached transient operator.
	TransientRun = thermal.TransientRun
	// TransientObservation is one step's cheap monitoring statistics
	// (peak temperature, per-ONI device gradients).
	TransientObservation = thermal.TransientObservation
	// TransientStepper is the raw fvm-level step-at-a-time integrator.
	TransientStepper = fvm.TransientStepper
	// TransientCheckpoint is the serialisable state of a transient run;
	// restores are fingerprint-checked against mesh, operator, power
	// vector, time step and solver.
	TransientCheckpoint = fvm.TransientCheckpoint
	// LayerMap is a lateral temperature slice through one stack layer.
	LayerMap = thermal.LayerMap
)

// DecodeTransientCheckpoint reads and validates a JSON transient
// checkpoint (the format TransientCheckpoint.Encode writes).
func DecodeTransientCheckpoint(r io.Reader) (*TransientCheckpoint, error) {
	return fvm.DecodeTransientCheckpoint(r)
}

// NewMeshGrid builds a grid from per-axis line coordinates.
func NewMeshGrid(x, y, z []float64) (*MeshGrid, error) { return mesh.NewGrid(x, y, z) }

// NewMeshAxisBuilder starts an axis over [lo, hi] with a default cell size.
func NewMeshAxisBuilder(lo, hi, defaultStep float64) *MeshAxisBuilder {
	return mesh.NewAxisBuilder(lo, hi, defaultStep)
}

// Boundary condition kinds.
const (
	Adiabatic  = fvm.Adiabatic
	Convection = fvm.Convection
	Dirichlet  = fvm.Dirichlet
)

// Sparse solver backends. SolverMGCG is the geometric-multigrid
// preconditioned CG: on the paper's graded chip meshes its iteration count
// is independent of resolution, making it the backend of choice for
// fine-mesh (fast/paper resolution) thermal solves and batched basis
// builds; the simpler backends win on small preview/coarse meshes.
const (
	SolverJacobiCG = sparse.BackendJacobiCG
	SolverSSORCG   = sparse.BackendSSORCG
	SolverMGCG     = sparse.BackendMGCG
)

// SolverBackends lists the available sparse solver backends.
func SolverBackends() []string { return sparse.Backends() }

// NewSparseSolver builds a configured sparse solver backend.
func NewSparseSolver(c SparseSolverConfig) (SparseSolver, error) { return c.New() }

// NewFVMSystem assembles a problem's conduction operator once for reuse
// across many solves (steady, batched multi-RHS, transient).
func NewFVMSystem(p *FVMProblem) (*FVMSystem, error) { return fvm.NewSystem(p) }

// SolveSteady solves a raw steady-state conduction problem.
func SolveSteady(p *FVMProblem, opts fvm.SolveOptions) (*FVMSolution, error) {
	return fvm.SolveSteady(p, opts)
}

// SolveTransient integrates a raw transient conduction problem.
func SolveTransient(p *FVMProblem, opts fvm.TransientOptions) (*FVMSolution, error) {
	return fvm.SolveTransient(p, opts)
}
