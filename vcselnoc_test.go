package vcselnoc

import (
	"math"
	"sync"
	"testing"
)

// The public-API tests share one coarse methodology.
var (
	apiOnce sync.Once
	apiM    *Methodology
	apiErr  error
)

func apiMethodology(t *testing.T) *Methodology {
	t.Helper()
	apiOnce.Do(func() {
		spec, err := PaperSpec()
		if err != nil {
			apiErr = err
			return
		}
		spec.Res = CoarseResolution()
		spec.SolverTol = 1e-7
		apiM, apiErr = NewWithSpec(spec, DefaultSNRConfig())
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiM
}

func TestPublicDeviceModels(t *testing.T) {
	laser, err := NewVCSEL(DefaultVCSELParams())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := laser.Operate(4e-3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Efficiency <= 0.05 || pt.Efficiency > 0.25 {
		t.Errorf("η(4mA, 40°C) = %.1f%%", pt.Efficiency*100)
	}

	ring, err := NewMR(DefaultMRParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.DropFraction(1550.775, 1550); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("drop at half-FWHM = %g", got)
	}

	det, err := NewDetector(DefaultDetectorParams())
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detects(1e-3) || det.Detects(1e-6) {
		t.Error("detector thresholds wrong")
	}

	if err := DefaultLossBudget().Validate(); err != nil {
		t.Error(err)
	}
}

func TestPublicArchitecture(t *testing.T) {
	fp, err := NewSCCFloorplan()
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Tiles) != 24 || len(fp.ONISites) != 16 {
		t.Fatalf("floorplan: %d tiles, %d ONI sites", len(fp.Tiles), len(fp.ONISites))
	}
	st, err := DefaultPackageStack()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalThickness() <= 0 {
		t.Error("stack has no thickness")
	}
	hs := DefaultHeatSink()
	if err := hs.Validate(); err != nil {
		t.Error(err)
	}
	layout, err := GenerateONI(NewONISite(0, 0, 360e-6, 200e-6), Chessboard)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPublicActivities(t *testing.T) {
	for _, name := range []string{"uniform", "diagonal", "random", "hotspot", "checkerboard"} {
		s, err := ActivityByName(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w, err := s.Weights(6, 4)
		if err != nil || len(w) != 24 {
			t.Errorf("%s weights: %v", name, err)
		}
	}
	if _, err := ActivityByName("nope", 0); err == nil {
		t.Error("unknown activity should error")
	}
}

func TestPublicRings(t *testing.T) {
	fp, err := NewSCCFloorplan()
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range []CaseStudy{Case18mm, Case32mm, Case47mm} {
		r, err := BuildCase(fp, cs)
		if err != nil {
			t.Fatalf("%v: %v", cs, err)
		}
		if r.Length() <= 0 {
			t.Errorf("%v: non-positive length", cs)
		}
	}
	custom, err := NewRing([]RingNode{
		{SiteIndex: 0, X: 0, Y: 0},
		{SiteIndex: 1, X: 1e-3, Y: 0},
		{SiteIndex: 2, X: 1e-3, Y: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if custom.N() != 3 {
		t.Error("custom ring size wrong")
	}
}

func TestPublicXbars(t *testing.T) {
	cmp, err := CompareXbars(8, 2e-3, DefaultLossBudget())
	if err != nil {
		t.Fatal(err)
	}
	orn := cmp.Results[TopoORNoC]
	for _, topo := range []XbarTopology{TopoMatrix, TopoLambdaRouter, TopoSnake} {
		if orn.WorstLossDB >= cmp.Results[topo].WorstLossDB {
			t.Errorf("ORNoC not better than %v", topo)
		}
	}
	if _, err := AnalyzeXbar(XbarDesign{Topology: TopoSnake, N: 4, Pitch: 1e-3, Budget: DefaultLossBudget()}); err != nil {
		t.Error(err)
	}
}

func TestPublicMeshAndFVM(t *testing.T) {
	// Build a tiny custom structure through the public API and solve it.
	xb := NewMeshAxisBuilder(0, 1e-3, 0.25e-3)
	xs, err := xb.Build()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewMeshGrid(xs, []float64{0, 0.5e-3, 1e-3}, []float64{0, 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	n := grid.NumCells()
	cond := make([]float64, n)
	power := make([]float64, n)
	for i := range cond {
		cond[i] = 100
	}
	power[0] = 0.1
	sol, err := SolveSteady(&FVMProblem{
		Grid:         grid,
		Conductivity: cond,
		Power:        power,
		ZMax:         FVMBoundary{Type: Convection, H: 1e4, Value: 25},
	}, FVMSolveOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.GlobalStats()
	if st.Min < 25 || st.Max <= st.Min {
		t.Errorf("field out of range: [%g, %g]", st.Min, st.Max)
	}
	if e := sol.EnergyBalanceError(); e > 1e-6 {
		t.Errorf("energy imbalance %g", e)
	}
}

func TestPublicMethodologyFlow(t *testing.T) {
	m := apiMethodology(t)
	res, err := m.ThermalAnalysis(Powers{Chip: 25, VCSEL: 3.6e-3, Driver: 3.6e-3, Heater: 1.08e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ONIs) != 16 {
		t.Fatalf("%d ONIs", len(res.ONIs))
	}
	lm, err := res.OpticalLayerSlice()
	if err != nil {
		t.Fatal(err)
	}
	if lm.Max <= lm.Min {
		t.Error("layer map degenerate")
	}
	ev, err := m.EvaluateDesign(SNRScenario{
		Case: Case32mm, ChipPower: 24, PVCSEL: 3.6e-3, PHeater: 1.08e-3, Pattern: Neighbour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.SNR.Report.WorstSNRdB < 5 {
		t.Errorf("worst SNR %.1f dB suspiciously low", ev.SNR.Report.WorstSNRdB)
	}
	if ev.ONoCPower <= 0 {
		t.Error("ONoC power not accounted")
	}
}

func TestGradientLimitConstant(t *testing.T) {
	if GradientLimit != 1.0 {
		t.Errorf("gradient limit %g, want the paper's 1 °C", GradientLimit)
	}
}
